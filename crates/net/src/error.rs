//! Typed errors of the network layer, on both sides of the wire.
//!
//! Local failures (socket I/O, undecodable frames) and *remote* failures (a
//! typed error frame sent by the peer) are distinct variants, so a caller can
//! tell "my connection broke" apart from "the server rejected my request" —
//! and, for remote errors, which [`ErrorCode`] the server assigned.

use std::fmt;

use hist_persist::CodecError;

use crate::proto::ErrorCode;

/// Errors produced by the client, the server's internals, and the frame
/// reader/writer.
#[derive(Debug)]
pub enum NetError {
    /// The underlying socket failed (connect, read, write, shutdown).
    Io(std::io::Error),
    /// Received bytes that do not decode as a protocol frame (bad magic,
    /// checksum mismatch, truncated payload, hostile count, …).
    Frame(CodecError),
    /// The peer announced a frame larger than the configured maximum; the
    /// frame was rejected *before* any allocation.
    FrameTooLarge {
        /// Announced frame length.
        len: usize,
        /// Largest frame this side accepts.
        max: usize,
    },
    /// The connection closed in the middle of a request/response exchange.
    Disconnected,
    /// A configured client deadline expired: the connect attempt or a
    /// response read took longer than the caller allowed. Distinct from
    /// [`NetError::Io`] so callers can branch on "the server is slow" without
    /// string-matching error kinds.
    Timeout {
        /// Which operation timed out (`"connect"` / `"response read"`).
        what: &'static str,
        /// The deadline that expired.
        after: std::time::Duration,
    },
    /// The server answered with a typed error frame.
    Remote {
        /// Store epoch at the time the server built the error frame.
        epoch: u64,
        /// The typed error code.
        code: ErrorCode,
        /// Human-readable detail from the server.
        message: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket error: {e}"),
            NetError::Frame(e) => write!(f, "undecodable frame: {e}"),
            NetError::FrameTooLarge { len, max } => {
                write!(f, "announced frame of {len} byte(s) exceeds the {max}-byte limit")
            }
            NetError::Disconnected => write!(f, "connection closed mid-exchange"),
            NetError::Timeout { what, after } => {
                write!(f, "{what} timed out after {after:?}")
            }
            NetError::Remote { epoch, code, message } => {
                write!(f, "server error {code:?} at epoch {epoch}: {message}")
            }
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<CodecError> for NetError {
    fn from(e: CodecError) -> Self {
        NetError::Frame(e)
    }
}

/// Result alias for the network layer.
pub type NetResult<T> = std::result::Result<T, NetError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_carry_key_data() {
        let e = NetError::FrameTooLarge { len: 1 << 30, max: 1 << 20 };
        assert!(e.to_string().contains("1048576"));
        let e = NetError::Remote {
            epoch: 7,
            code: ErrorCode::EmptyStore,
            message: "no synopsis published".into(),
        };
        assert!(e.to_string().contains("EmptyStore") && e.to_string().contains('7'));
        let e: NetError = CodecError::BadMagic.into();
        assert!(matches!(e, NetError::Frame(_)));
        use std::error::Error as _;
        assert!(e.source().is_some());
    }
}
