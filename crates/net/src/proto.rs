//! Request/response messages and their payload codecs.
//!
//! Payloads are little-endian with count-prefixed repeats, parsed through the
//! bounded [`hist_persist::wire::Reader`] — every count is validated against
//! the bytes actually remaining before any `Vec` is sized from it, so
//! decoding hostile payloads is total (typed errors, no panics, no
//! over-allocation). Synopses travel inside `Publish`/`UpdateMerge` as
//! nested `AHISTSYN` containers, reusing the `hist-persist` codec verbatim:
//! the server decodes them through the same validating path a file load
//! uses, which is what makes a published synopsis answer queries
//! bit-identically to the local original.
//!
//! Every response payload opens with the store epoch the answer was computed
//! at, so a client can order responses across reconnects and publishes.

use hist_persist::wire::{put_f64, put_u64, Reader};
use hist_persist::{CodecError, CodecResult};

use crate::frame::{seal_message, split_message};

// Request opcodes.
const OP_CDF_BATCH: u8 = 0x01;
const OP_QUANTILE_BATCH: u8 = 0x02;
const OP_MASS_BATCH: u8 = 0x03;
const OP_STATS: u8 = 0x04;
const OP_PUBLISH: u8 = 0x10;
const OP_UPDATE_MERGE: u8 = 0x11;

// Response opcodes (request op | 0x80, plus the shared update/error ops).
const OP_CDF_OK: u8 = 0x81;
const OP_QUANTILE_OK: u8 = 0x82;
const OP_MASS_OK: u8 = 0x83;
const OP_STATS_OK: u8 = 0x84;
const OP_UPDATED: u8 = 0x90;
const OP_ERROR: u8 = 0xEE;

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Normalized cdf at each index, answered from one snapshot.
    CdfBatch(Vec<u64>),
    /// Smallest index reaching each cumulative fraction.
    QuantileBatch(Vec<f64>),
    /// Estimated mass over each inclusive `(start, end)` index range.
    MassBatch(Vec<(u64, u64)>),
    /// Store epoch plus a summary of the served synopsis.
    Stats,
    /// Admin: replace the served synopsis with the shipped `AHISTSYN` blob.
    Publish(Vec<u8>),
    /// Admin: merge the shipped adjacent-chunk synopsis into the served one,
    /// re-merged down to `budget` pieces.
    UpdateMerge {
        /// Piece budget of the re-merge.
        budget: u64,
        /// `AHISTSYN`-encoded chunk synopsis.
        synopsis: Vec<u8>,
    },
}

/// Summary of the synopsis a server is serving, as reported by
/// [`Request::Stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct SynopsisStats {
    /// Domain size `n`.
    pub domain: u64,
    /// Number of pieces of the fitted model.
    pub pieces: u64,
    /// Piece budget the estimator was configured with.
    pub target_k: u64,
    /// Raw total mass.
    pub total_mass: f64,
    /// Name of the estimator that produced the synopsis.
    pub estimator: String,
}

/// Typed error codes a server stamps on error frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request frame did not decode (truncated payload, hostile count,
    /// trailing bytes, …).
    MalformedFrame,
    /// The request announced a protocol version this server does not speak.
    UnsupportedVersion,
    /// The op byte is not a request this version defines.
    UnknownOp,
    /// The request decoded but a query argument is invalid for the served
    /// synopsis (index out of domain, fraction outside `[0, 1]`, …).
    InvalidQuery,
    /// A query arrived before any synopsis was published.
    EmptyStore,
    /// A `Publish`/`UpdateMerge` payload failed to decode or validate.
    InvalidSynopsis,
    /// The announced frame length exceeds the server's limit.
    FrameTooLarge,
    /// The connection used up its per-connection request budget.
    RequestLimit,
    /// A code this build does not know (from a newer peer).
    Unknown(u8),
}

impl ErrorCode {
    /// The wire byte for this code.
    pub fn to_u8(self) -> u8 {
        match self {
            ErrorCode::MalformedFrame => 1,
            ErrorCode::UnsupportedVersion => 2,
            ErrorCode::UnknownOp => 3,
            ErrorCode::InvalidQuery => 4,
            ErrorCode::EmptyStore => 5,
            ErrorCode::InvalidSynopsis => 6,
            ErrorCode::FrameTooLarge => 7,
            ErrorCode::RequestLimit => 8,
            ErrorCode::Unknown(raw) => raw,
        }
    }

    /// The code a wire byte names (never fails: unknown bytes are preserved
    /// as [`ErrorCode::Unknown`]).
    pub fn from_u8(raw: u8) -> Self {
        match raw {
            1 => ErrorCode::MalformedFrame,
            2 => ErrorCode::UnsupportedVersion,
            3 => ErrorCode::UnknownOp,
            4 => ErrorCode::InvalidQuery,
            5 => ErrorCode::EmptyStore,
            6 => ErrorCode::InvalidSynopsis,
            7 => ErrorCode::FrameTooLarge,
            8 => ErrorCode::RequestLimit,
            other => ErrorCode::Unknown(other),
        }
    }
}

/// A server response. Every variant opens with the store epoch it was
/// computed at.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Cdf values, in request order (raw IEEE-754 bits on the wire).
    CdfBatch {
        /// Epoch of the snapshot that answered.
        epoch: u64,
        /// One cdf value per requested index.
        values: Vec<f64>,
    },
    /// Quantile indices, in request order.
    QuantileBatch {
        /// Epoch of the snapshot that answered.
        epoch: u64,
        /// One index per requested fraction.
        indices: Vec<u64>,
    },
    /// Range masses, in request order.
    MassBatch {
        /// Epoch of the snapshot that answered.
        epoch: u64,
        /// One mass per requested range.
        masses: Vec<f64>,
    },
    /// Store statistics.
    Stats {
        /// Current store epoch (0 before the first publish).
        epoch: u64,
        /// Summary of the served synopsis, or `None` for an empty store.
        synopsis: Option<SynopsisStats>,
    },
    /// A `Publish`/`UpdateMerge` landed; the store now serves this epoch.
    Updated {
        /// The new epoch.
        epoch: u64,
    },
    /// Typed rejection. The connection stays usable unless the server also
    /// closed it (framing errors and exhausted request budgets close).
    Error {
        /// Store epoch when the error was built.
        epoch: u64,
        /// The typed code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// The wire opcode of this response kind — the single source the encoder
    /// and the client's mismatch reporting share.
    pub(crate) fn op(&self) -> u8 {
        match self {
            Response::CdfBatch { .. } => OP_CDF_OK,
            Response::QuantileBatch { .. } => OP_QUANTILE_OK,
            Response::MassBatch { .. } => OP_MASS_OK,
            Response::Stats { .. } => OP_STATS_OK,
            Response::Updated { .. } => OP_UPDATED,
            Response::Error { .. } => OP_ERROR,
        }
    }
}

// ---------------------------------------------------------------------------
// Encoding.
// ---------------------------------------------------------------------------

/// Encodes a request into one complete wire message (length prefix
/// included) — exactly the bytes a client writes to the socket.
pub fn encode_request(request: &Request) -> Vec<u8> {
    let mut payload = Vec::new();
    let op = match request {
        Request::CdfBatch(xs) => {
            put_u64(&mut payload, xs.len() as u64);
            for &x in xs {
                put_u64(&mut payload, x);
            }
            OP_CDF_BATCH
        }
        Request::QuantileBatch(ps) => {
            put_u64(&mut payload, ps.len() as u64);
            for &p in ps {
                put_f64(&mut payload, p);
            }
            OP_QUANTILE_BATCH
        }
        Request::MassBatch(ranges) => {
            put_u64(&mut payload, ranges.len() as u64);
            for &(start, end) in ranges {
                put_u64(&mut payload, start);
                put_u64(&mut payload, end);
            }
            OP_MASS_BATCH
        }
        Request::Stats => OP_STATS,
        Request::Publish(blob) => {
            put_u64(&mut payload, blob.len() as u64);
            payload.extend_from_slice(blob);
            OP_PUBLISH
        }
        Request::UpdateMerge { budget, synopsis } => {
            put_u64(&mut payload, *budget);
            put_u64(&mut payload, synopsis.len() as u64);
            payload.extend_from_slice(synopsis);
            OP_UPDATE_MERGE
        }
    };
    seal_message(op, &payload)
}

/// Encodes a response into one complete wire message (length prefix
/// included) — exactly the bytes a server writes to the socket.
pub fn encode_response(response: &Response) -> Vec<u8> {
    let mut payload = Vec::new();
    match response {
        Response::CdfBatch { epoch, values } => {
            put_u64(&mut payload, *epoch);
            put_u64(&mut payload, values.len() as u64);
            for &v in values {
                put_f64(&mut payload, v);
            }
        }
        Response::QuantileBatch { epoch, indices } => {
            put_u64(&mut payload, *epoch);
            put_u64(&mut payload, indices.len() as u64);
            for &i in indices {
                put_u64(&mut payload, i);
            }
        }
        Response::MassBatch { epoch, masses } => {
            put_u64(&mut payload, *epoch);
            put_u64(&mut payload, masses.len() as u64);
            for &m in masses {
                put_f64(&mut payload, m);
            }
        }
        Response::Stats { epoch, synopsis } => {
            put_u64(&mut payload, *epoch);
            match synopsis {
                None => payload.push(0),
                Some(stats) => {
                    payload.push(1);
                    put_u64(&mut payload, stats.domain);
                    put_u64(&mut payload, stats.pieces);
                    put_u64(&mut payload, stats.target_k);
                    put_f64(&mut payload, stats.total_mass);
                    put_u64(&mut payload, stats.estimator.len() as u64);
                    payload.extend_from_slice(stats.estimator.as_bytes());
                }
            }
        }
        Response::Updated { epoch } => {
            put_u64(&mut payload, *epoch);
        }
        Response::Error { epoch, code, message } => {
            put_u64(&mut payload, *epoch);
            payload.push(code.to_u8());
            put_u64(&mut payload, message.len() as u64);
            payload.extend_from_slice(message.as_bytes());
        }
    };
    seal_message(response.op(), &payload)
}

// ---------------------------------------------------------------------------
// Decoding.
// ---------------------------------------------------------------------------

/// Decodes a request from a verified frame's op byte and payload (the shape
/// [`crate::frame::check_envelope`] returns).
pub fn decode_request_frame(op: u8, payload: &[u8]) -> CodecResult<Request> {
    let mut reader = Reader::new(payload);
    let request = match op {
        OP_CDF_BATCH => {
            let count = reader.count("cdf indices", 8)?;
            let mut xs = Vec::with_capacity(count);
            for _ in 0..count {
                xs.push(reader.u64()?);
            }
            Request::CdfBatch(xs)
        }
        OP_QUANTILE_BATCH => {
            let count = reader.count("quantile fractions", 8)?;
            let mut ps = Vec::with_capacity(count);
            for _ in 0..count {
                ps.push(reader.f64()?);
            }
            Request::QuantileBatch(ps)
        }
        OP_MASS_BATCH => {
            let count = reader.count("mass ranges", 16)?;
            let mut ranges = Vec::with_capacity(count);
            for _ in 0..count {
                let start = reader.u64()?;
                let end = reader.u64()?;
                ranges.push((start, end));
            }
            Request::MassBatch(ranges)
        }
        OP_STATS => Request::Stats,
        OP_PUBLISH => Request::Publish(reader.section("synopsis blob")?.to_vec()),
        OP_UPDATE_MERGE => {
            let budget = reader.u64()?;
            let synopsis = reader.section("synopsis blob")?.to_vec();
            Request::UpdateMerge { budget, synopsis }
        }
        found => return Err(CodecError::InvalidTag { what: "request op", found }),
    };
    reader.finish()?;
    Ok(request)
}

/// Decodes a response from a verified frame's op byte and payload.
pub fn decode_response_frame(op: u8, payload: &[u8]) -> CodecResult<Response> {
    // The op is validated before the payload is touched, so an unknown op is
    // reported as such rather than as a truncation further in.
    if !matches!(op, OP_CDF_OK | OP_QUANTILE_OK | OP_MASS_OK | OP_STATS_OK | OP_UPDATED | OP_ERROR)
    {
        return Err(CodecError::InvalidTag { what: "response op", found: op });
    }
    let mut reader = Reader::new(payload);
    let epoch = reader.u64()?;
    let response = match op {
        OP_CDF_OK => {
            let count = reader.count("cdf values", 8)?;
            let mut values = Vec::with_capacity(count);
            for _ in 0..count {
                values.push(reader.f64()?);
            }
            Response::CdfBatch { epoch, values }
        }
        OP_QUANTILE_OK => {
            let count = reader.count("quantile indices", 8)?;
            let mut indices = Vec::with_capacity(count);
            for _ in 0..count {
                indices.push(reader.u64()?);
            }
            Response::QuantileBatch { epoch, indices }
        }
        OP_MASS_OK => {
            let count = reader.count("mass values", 8)?;
            let mut masses = Vec::with_capacity(count);
            for _ in 0..count {
                masses.push(reader.f64()?);
            }
            Response::MassBatch { epoch, masses }
        }
        OP_STATS_OK => {
            let synopsis = match reader.u8()? {
                0 => None,
                1 => {
                    let domain = reader.u64()?;
                    let pieces = reader.u64()?;
                    let target_k = reader.u64()?;
                    let total_mass = reader.f64()?;
                    let name = reader.section("estimator name")?;
                    let estimator =
                        std::str::from_utf8(name).map_err(|_| CodecError::NonUtf8Name)?.to_string();
                    Some(SynopsisStats { domain, pieces, target_k, total_mass, estimator })
                }
                found => {
                    return Err(CodecError::InvalidTag { what: "stats synopsis presence", found })
                }
            };
            Response::Stats { epoch, synopsis }
        }
        OP_UPDATED => Response::Updated { epoch },
        OP_ERROR => {
            let code = ErrorCode::from_u8(reader.u8()?);
            // Lossy on purpose: the message is display-only detail from the
            // peer, and a mangled byte must not turn a typed error frame
            // into an undecodable one.
            let message = String::from_utf8_lossy(reader.section("error message")?).into_owned();
            Response::Error { epoch, code, message }
        }
        _ => unreachable!("op membership checked above"),
    };
    reader.finish()?;
    Ok(response)
}

/// Decodes a complete wire message (length prefix included) as a request.
pub fn decode_request(message: &[u8]) -> CodecResult<Request> {
    let (op, payload) = split_message(message)?;
    decode_request_frame(op, payload)
}

/// Decodes a complete wire message (length prefix included) as a response.
pub fn decode_response(message: &[u8]) -> CodecResult<Response> {
    let (op, payload) = split_message(message)?;
    decode_response_frame(op, payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(request: Request) {
        let decoded = decode_request(&encode_request(&request)).unwrap();
        assert_eq!(decoded, request);
    }

    fn round_trip_response(response: Response) {
        let decoded = decode_response(&encode_response(&response)).unwrap();
        assert_eq!(decoded, response);
    }

    #[test]
    fn every_request_kind_round_trips() {
        round_trip_request(Request::CdfBatch(vec![]));
        round_trip_request(Request::CdfBatch(vec![0, 7, u64::MAX]));
        round_trip_request(Request::QuantileBatch(vec![0.0, 0.5, 1.0]));
        round_trip_request(Request::MassBatch(vec![(0, 0), (3, 99)]));
        round_trip_request(Request::Stats);
        round_trip_request(Request::Publish(b"AHISTSYN-ish bytes".to_vec()));
        round_trip_request(Request::UpdateMerge { budget: 11, synopsis: vec![1, 2, 3] });
    }

    #[test]
    fn every_response_kind_round_trips() {
        round_trip_response(Response::CdfBatch { epoch: 3, values: vec![0.25, 1.0] });
        round_trip_response(Response::QuantileBatch { epoch: 4, indices: vec![0, 99] });
        round_trip_response(Response::MassBatch { epoch: 5, masses: vec![-1.5, 0.0] });
        round_trip_response(Response::Stats { epoch: 0, synopsis: None });
        round_trip_response(Response::Stats {
            epoch: 9,
            synopsis: Some(SynopsisStats {
                domain: 256,
                pieces: 13,
                target_k: 5,
                total_mass: 960.0,
                estimator: "merging".into(),
            }),
        });
        round_trip_response(Response::Updated { epoch: 42 });
        round_trip_response(Response::Error {
            epoch: 7,
            code: ErrorCode::InvalidQuery,
            message: "index 900 out of domain 256".into(),
        });
    }

    #[test]
    fn cdf_values_ship_as_raw_bits() {
        // Negative zero and a subnormal survive exactly — the wire carries
        // IEEE-754 bits, not a decimal rendering.
        let values = vec![-0.0, f64::MIN_POSITIVE / 4.0];
        let encoded = encode_response(&Response::CdfBatch { epoch: 1, values: values.clone() });
        match decode_response(&encoded).unwrap() {
            Response::CdfBatch { values: decoded, .. } => {
                let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&decoded), bits(&values));
            }
            other => panic!("wrong response: {other:?}"),
        }
    }

    #[test]
    fn error_codes_round_trip_including_unknown() {
        for raw in 0..=255u8 {
            assert_eq!(ErrorCode::from_u8(raw).to_u8(), raw);
        }
        assert_eq!(ErrorCode::from_u8(200), ErrorCode::Unknown(200));
    }

    #[test]
    fn request_and_response_ops_reject_each_other() {
        let request = encode_request(&Request::Stats);
        assert!(matches!(
            decode_response(&request),
            Err(CodecError::InvalidTag { what: "response op", .. })
        ));
        let response = encode_response(&Response::Updated { epoch: 1 });
        assert!(matches!(
            decode_request(&response),
            Err(CodecError::InvalidTag { what: "request op", .. })
        ));
    }

    #[test]
    fn hostile_counts_are_rejected_before_allocation() {
        // A CdfBatch announcing u64::MAX indices inside a valid envelope.
        let mut payload = Vec::new();
        put_u64(&mut payload, u64::MAX);
        let message = seal_message(OP_CDF_BATCH, &payload);
        assert!(matches!(
            decode_request(&message),
            Err(CodecError::CountOutOfBounds { count: u64::MAX, .. })
        ));
    }

    #[test]
    fn trailing_payload_bytes_are_rejected() {
        let mut payload = Vec::new();
        put_u64(&mut payload, 0); // zero indices…
        payload.extend_from_slice(b"junk"); // …then junk
        let message = seal_message(OP_CDF_BATCH, &payload);
        assert!(matches!(
            decode_request(&message),
            Err(CodecError::TrailingBytes { remaining: 4 })
        ));
    }
}
