//! Request/response messages and their payload codecs, for both protocol
//! versions this build speaks.
//!
//! Payloads are little-endian with count-prefixed repeats, parsed through the
//! bounded [`hist_persist::wire::Reader`] — every count is validated against
//! the bytes actually remaining before any `Vec` is sized from it, so
//! decoding hostile payloads is total (typed errors, no panics, no
//! over-allocation). Synopses travel inside `Publish`/`UpdateMerge` (and the
//! `MergedView` answer) as nested `AHISTSYN` containers, reusing the
//! `hist-persist` codec verbatim: the server decodes them through the same
//! validating path a file load uses, which is what makes a published synopsis
//! answer queries bit-identically to the local original.
//!
//! ## Versions
//!
//! * **v3** (current): the `Stats` and `StoreStats` answers append the
//!   self-tuning maintenance counters (merge count, refit count, merged
//!   mass, accumulated merge error). Requests are unchanged from v2; a v2
//!   frame simply omits the counters and decodes them as zero.
//! * **v2**: every query/admin op opens with a *key* section — a
//!   length-prefixed, non-empty UTF-8 tenant/metric name of at most
//!   [`hist_persist::MAX_KEY_BYTES`] bytes — addressing one store of the
//!   server's keyed [`StoreMap`](hist_serve::StoreMap). Four ops are
//!   v2-only: `StoreStats`, `ListKeys`, `MergedView`, `DropKey`.
//! * **v1** (legacy, decode + mirrored answers): the keyless single-store
//!   layout. A v1 frame decodes as the same request addressed at
//!   [`hist_serve::DEFAULT_KEY`], so old clients and a keyed server agree on
//!   which store "the" store is. v2-only ops do not exist in v1: their op
//!   bytes in a v1 frame are unknown ops, and their response kinds refuse to
//!   encode at v1.
//!
//! Every response payload opens with the epoch the answer was computed at
//! (the addressed key's epoch; store-wide answers carry the largest per-key
//! epoch), so a client can order responses across reconnects and publishes.

use hist_persist::wire::{put_f64, put_u64, Reader};
use hist_persist::{CodecError, CodecResult};
use hist_serve::DEFAULT_KEY;

use hist_persist::crc32::crc32;

use crate::frame::{
    seal_message_versioned, split_message, LENGTH_PREFIX_BYTES, NET_MAGIC, PROTOCOL_VERSION,
};

// Request opcodes.
const OP_CDF_BATCH: u8 = 0x01;
const OP_QUANTILE_BATCH: u8 = 0x02;
const OP_MASS_BATCH: u8 = 0x03;
const OP_STATS: u8 = 0x04;
const OP_STORE_STATS: u8 = 0x05;
const OP_LIST_KEYS: u8 = 0x06;
const OP_MERGED_VIEW: u8 = 0x07;
const OP_PUBLISH: u8 = 0x10;
const OP_UPDATE_MERGE: u8 = 0x11;
const OP_DROP_KEY: u8 = 0x12;

// Response opcodes (request op | 0x80, plus the shared admin/error ops).
const OP_CDF_OK: u8 = 0x81;
const OP_QUANTILE_OK: u8 = 0x82;
const OP_MASS_OK: u8 = 0x83;
const OP_STATS_OK: u8 = 0x84;
const OP_STORE_STATS_OK: u8 = 0x85;
const OP_LIST_KEYS_OK: u8 = 0x86;
const OP_MERGED_VIEW_OK: u8 = 0x87;
const OP_UPDATED: u8 = 0x90;
const OP_DROPPED: u8 = 0x91;
const OP_ERROR: u8 = 0xEE;

/// A client request. Keyed ops address one store of the server's
/// [`StoreMap`](hist_serve::StoreMap); protocol v1 frames decode with
/// `key == `[`DEFAULT_KEY`].
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Normalized cdf at each index, answered from one snapshot of `key`.
    CdfBatch {
        /// Addressed store.
        key: String,
        /// Requested indices.
        xs: Vec<u64>,
    },
    /// Smallest index reaching each cumulative fraction.
    QuantileBatch {
        /// Addressed store.
        key: String,
        /// Requested fractions.
        ps: Vec<f64>,
    },
    /// Estimated mass over each inclusive `(start, end)` index range.
    MassBatch {
        /// Addressed store.
        key: String,
        /// Requested ranges.
        ranges: Vec<(u64, u64)>,
    },
    /// Per-key stats: the key's epoch plus a summary of its synopsis.
    Stats {
        /// Addressed store.
        key: String,
    },
    /// Store-wide summary: key count, served count, total pieces, epoch
    /// range. (v2 only.)
    StoreStats,
    /// Every key, in canonical (ascending) order. (v2 only.)
    ListKeys,
    /// Tree-merge every served key's synopsis into one global view with the
    /// given piece budget. (v2 only.)
    MergedView {
        /// Piece budget of the merged synopsis.
        budget: u64,
    },
    /// Admin: replace `key`'s served synopsis with the shipped `AHISTSYN`
    /// blob (creating the key on first use).
    Publish {
        /// Addressed store.
        key: String,
        /// `AHISTSYN`-encoded synopsis.
        synopsis: Vec<u8>,
    },
    /// Admin: merge the shipped adjacent-chunk synopsis into `key`'s served
    /// one, re-merged down to `budget` pieces.
    UpdateMerge {
        /// Addressed store.
        key: String,
        /// Piece budget of the re-merge.
        budget: u64,
        /// `AHISTSYN`-encoded chunk synopsis.
        synopsis: Vec<u8>,
    },
    /// Admin: evict `key` and its store. (v2 only.)
    DropKey {
        /// Key to evict.
        key: String,
    },
}

/// Summary of one served synopsis, as reported by [`Request::Stats`]: piece
/// count, domain bounds, budget, mass and provenance — all in one frame.
#[derive(Debug, Clone, PartialEq)]
pub struct SynopsisStats {
    /// Domain size `n` (the synopsis covers indices `0..domain`).
    pub domain: u64,
    /// Number of pieces of the fitted model.
    pub pieces: u64,
    /// Piece budget the estimator was configured with.
    pub target_k: u64,
    /// Raw total mass.
    pub total_mass: f64,
    /// Name of the estimator that produced the synopsis.
    pub estimator: String,
    /// Merges absorbed by this key's store since it was created. (v3+;
    /// decodes as 0 from older frames.)
    pub merges: u64,
    /// Maintenance refits published for this key. (v3+; 0 from older frames.)
    pub refits: u64,
    /// Accumulated merge-error bound (summed per-merge ℓ₂ deltas) since the
    /// last refit. (v3+; 0 from older frames.)
    pub merge_error: f64,
}

/// Store-wide summary of a keyed server, as reported by
/// [`Request::StoreStats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreWideStats {
    /// Number of keys present (served or not).
    pub keys: u64,
    /// Number of keys currently serving a synopsis.
    pub served: u64,
    /// Total piece count across all served synopses.
    pub total_pieces: u64,
    /// Smallest per-key epoch (0 if any key never published, or no keys).
    pub min_epoch: u64,
    /// Largest per-key epoch (0 if no keys).
    pub max_epoch: u64,
    /// Merges absorbed across every key. (v3+; decodes as 0 from older
    /// frames.)
    pub merges: u64,
    /// Maintenance refits published across every key. (v3+; 0 from older
    /// frames.)
    pub refits: u64,
    /// Total mass of every merged-in chunk. (v3+; 0 from older frames.)
    pub merged_mass: f64,
    /// Summed accumulated merge-error bounds across keys since their last
    /// refits. (v3+; 0 from older frames.)
    pub merge_error: f64,
}

/// Typed error codes a server stamps on error frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request frame did not decode (truncated payload, hostile count,
    /// trailing bytes, …).
    MalformedFrame,
    /// The request announced a protocol version this server does not speak.
    UnsupportedVersion,
    /// The op byte is not a request this version defines.
    UnknownOp,
    /// The request decoded but a query argument is invalid for the served
    /// synopsis (index out of domain, fraction outside `[0, 1]`, …).
    InvalidQuery,
    /// A query arrived before any synopsis was published.
    EmptyStore,
    /// A `Publish`/`UpdateMerge` payload failed to decode or validate.
    InvalidSynopsis,
    /// The announced frame length exceeds the server's limit.
    FrameTooLarge,
    /// The connection used up its per-connection request budget.
    RequestLimit,
    /// The addressed key is not present in the store map.
    UnknownKey,
    /// The key violates the encoding rules (empty, over the length cap, not
    /// valid UTF-8).
    InvalidKey,
    /// A code this build does not know (from a newer peer).
    Unknown(u8),
}

impl ErrorCode {
    /// The wire byte for this code.
    pub fn to_u8(self) -> u8 {
        match self {
            ErrorCode::MalformedFrame => 1,
            ErrorCode::UnsupportedVersion => 2,
            ErrorCode::UnknownOp => 3,
            ErrorCode::InvalidQuery => 4,
            ErrorCode::EmptyStore => 5,
            ErrorCode::InvalidSynopsis => 6,
            ErrorCode::FrameTooLarge => 7,
            ErrorCode::RequestLimit => 8,
            ErrorCode::UnknownKey => 9,
            ErrorCode::InvalidKey => 10,
            ErrorCode::Unknown(raw) => raw,
        }
    }

    /// The oldest protocol version whose peers know this code: the
    /// `UnknownKey`/`InvalidKey` pair shipped with the keyed v2 layout;
    /// everything else is v1-era. [`ErrorCode::Unknown`] reports v1 because
    /// it is a passthrough of a foreign peer's byte, not a code this build
    /// mints — downgrading it would mangle a code we do not understand.
    fn min_version(self) -> u16 {
        match self {
            ErrorCode::UnknownKey | ErrorCode::InvalidKey => 2,
            _ => 1,
        }
    }

    /// The code an error frame may carry when answering at `version`: codes
    /// newer than the mirrored version downgrade to the v1-era
    /// [`ErrorCode::InvalidQuery`], so a v1 client is never handed a byte its
    /// protocol never defined (the human-readable message keeps the detail).
    pub fn for_version(self, version: u16) -> Self {
        if version < self.min_version() {
            ErrorCode::InvalidQuery
        } else {
            self
        }
    }

    /// The code a wire byte names (never fails: unknown bytes are preserved
    /// as [`ErrorCode::Unknown`]).
    pub fn from_u8(raw: u8) -> Self {
        match raw {
            1 => ErrorCode::MalformedFrame,
            2 => ErrorCode::UnsupportedVersion,
            3 => ErrorCode::UnknownOp,
            4 => ErrorCode::InvalidQuery,
            5 => ErrorCode::EmptyStore,
            6 => ErrorCode::InvalidSynopsis,
            7 => ErrorCode::FrameTooLarge,
            8 => ErrorCode::RequestLimit,
            9 => ErrorCode::UnknownKey,
            10 => ErrorCode::InvalidKey,
            other => ErrorCode::Unknown(other),
        }
    }
}

/// A server response. Every variant opens with the epoch it was computed at
/// (the addressed key's epoch; store-wide kinds carry the largest per-key
/// epoch).
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Cdf values, in request order (raw IEEE-754 bits on the wire).
    CdfBatch {
        /// Epoch of the snapshot that answered.
        epoch: u64,
        /// One cdf value per requested index.
        values: Vec<f64>,
    },
    /// Quantile indices, in request order.
    QuantileBatch {
        /// Epoch of the snapshot that answered.
        epoch: u64,
        /// One index per requested fraction.
        indices: Vec<u64>,
    },
    /// Range masses, in request order.
    MassBatch {
        /// Epoch of the snapshot that answered.
        epoch: u64,
        /// One mass per requested range.
        masses: Vec<f64>,
    },
    /// Per-key statistics.
    Stats {
        /// The addressed key's epoch (0 before its first publish).
        epoch: u64,
        /// Summary of the key's served synopsis, or `None` if it serves
        /// nothing.
        synopsis: Option<SynopsisStats>,
    },
    /// Store-wide statistics. (v2 only.)
    StoreStats {
        /// Largest per-key epoch.
        epoch: u64,
        /// The summary.
        stats: StoreWideStats,
    },
    /// The key listing, in canonical (ascending) order. (v2 only.)
    KeyList {
        /// Largest per-key epoch when the listing was taken.
        epoch: u64,
        /// Every key.
        keys: Vec<String>,
    },
    /// The merged global view. (v2 only.)
    MergedView {
        /// Largest epoch among the contributing snapshots.
        epoch: u64,
        /// Number of keys that contributed a synopsis.
        keys: u64,
        /// The merged synopsis as a nested `AHISTSYN` container.
        synopsis: Vec<u8>,
    },
    /// A `Publish`/`UpdateMerge` landed; the key's store now serves this
    /// epoch.
    Updated {
        /// The new epoch.
        epoch: u64,
    },
    /// A `DropKey` was processed. (v2 only.)
    Dropped {
        /// The dropped key's last epoch (0 if it was absent).
        epoch: u64,
        /// Whether the key existed.
        existed: bool,
    },
    /// Typed rejection. The connection stays usable unless the server also
    /// closed it (framing errors and exhausted request budgets close).
    Error {
        /// Relevant epoch when the error was built (the addressed key's
        /// epoch where one was decoded, otherwise the store-wide maximum).
        epoch: u64,
        /// The typed code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// The wire opcode of this response kind — the single source the encoder
    /// and the client's mismatch reporting share.
    pub(crate) fn op(&self) -> u8 {
        match self {
            Response::CdfBatch { .. } => OP_CDF_OK,
            Response::QuantileBatch { .. } => OP_QUANTILE_OK,
            Response::MassBatch { .. } => OP_MASS_OK,
            Response::Stats { .. } => OP_STATS_OK,
            Response::StoreStats { .. } => OP_STORE_STATS_OK,
            Response::KeyList { .. } => OP_LIST_KEYS_OK,
            Response::MergedView { .. } => OP_MERGED_VIEW_OK,
            Response::Updated { .. } => OP_UPDATED,
            Response::Dropped { .. } => OP_DROPPED,
            Response::Error { .. } => OP_ERROR,
        }
    }
}

// ---------------------------------------------------------------------------
// Key helpers.
// ---------------------------------------------------------------------------

/// Writes a key section: u64 length prefix + UTF-8 bytes.
fn put_key(out: &mut Vec<u8>, key: &str) {
    put_u64(out, key.len() as u64);
    out.extend_from_slice(key.as_bytes());
}

/// Reads and validates a key section: UTF-8, non-empty, within
/// [`hist_persist::MAX_KEY_BYTES`].
fn read_key(reader: &mut Reader<'_>) -> CodecResult<String> {
    let bytes = reader.section("key")?;
    let key = std::str::from_utf8(bytes)
        .map_err(|_| CodecError::InvalidKey { reason: "key is not valid UTF-8" })?;
    hist_persist::validate_key(key)?;
    Ok(key.to_owned())
}

/// The typed error for a request that protocol v1 cannot express.
fn v1_cannot_express() -> CodecError {
    CodecError::UnsupportedVersion { found: 1, supported: PROTOCOL_VERSION }
}

// ---------------------------------------------------------------------------
// Encoding.
// ---------------------------------------------------------------------------

/// Encodes a request into one complete wire message (length prefix included)
/// at the current [`PROTOCOL_VERSION`] — exactly the bytes a v2 client
/// writes to the socket.
pub fn encode_request(request: &Request) -> Vec<u8> {
    encode_request_versioned(PROTOCOL_VERSION, request)
        .expect("the current protocol version encodes every request")
}

/// Encodes a request at an explicit protocol version.
///
/// v1 is keyless single-store: requests addressing any key other than
/// [`DEFAULT_KEY`], and the v2-only ops, return a typed error instead of
/// silently dropping information.
pub fn encode_request_versioned(version: u16, request: &Request) -> CodecResult<Vec<u8>> {
    check_encodable_version(version)?;
    let keyed = version >= 2;
    let key_fits_v1 = |key: &str| {
        if key == DEFAULT_KEY {
            Ok(())
        } else {
            Err(CodecError::InvalidKey { reason: "protocol v1 addresses only the default key" })
        }
    };
    let mut payload = Vec::new();
    let op = match request {
        Request::CdfBatch { key, xs } => {
            if keyed {
                put_key(&mut payload, key);
            } else {
                key_fits_v1(key)?;
            }
            put_u64(&mut payload, xs.len() as u64);
            for &x in xs {
                put_u64(&mut payload, x);
            }
            OP_CDF_BATCH
        }
        Request::QuantileBatch { key, ps } => {
            if keyed {
                put_key(&mut payload, key);
            } else {
                key_fits_v1(key)?;
            }
            put_u64(&mut payload, ps.len() as u64);
            for &p in ps {
                put_f64(&mut payload, p);
            }
            OP_QUANTILE_BATCH
        }
        Request::MassBatch { key, ranges } => {
            if keyed {
                put_key(&mut payload, key);
            } else {
                key_fits_v1(key)?;
            }
            put_u64(&mut payload, ranges.len() as u64);
            for &(start, end) in ranges {
                put_u64(&mut payload, start);
                put_u64(&mut payload, end);
            }
            OP_MASS_BATCH
        }
        Request::Stats { key } => {
            if keyed {
                put_key(&mut payload, key);
            } else {
                key_fits_v1(key)?;
            }
            OP_STATS
        }
        Request::StoreStats => {
            if !keyed {
                return Err(v1_cannot_express());
            }
            OP_STORE_STATS
        }
        Request::ListKeys => {
            if !keyed {
                return Err(v1_cannot_express());
            }
            OP_LIST_KEYS
        }
        Request::MergedView { budget } => {
            if !keyed {
                return Err(v1_cannot_express());
            }
            put_u64(&mut payload, *budget);
            OP_MERGED_VIEW
        }
        Request::Publish { key, synopsis } => {
            if keyed {
                put_key(&mut payload, key);
            } else {
                key_fits_v1(key)?;
            }
            put_u64(&mut payload, synopsis.len() as u64);
            payload.extend_from_slice(synopsis);
            OP_PUBLISH
        }
        Request::UpdateMerge { key, budget, synopsis } => {
            if keyed {
                put_key(&mut payload, key);
            } else {
                key_fits_v1(key)?;
            }
            put_u64(&mut payload, *budget);
            put_u64(&mut payload, synopsis.len() as u64);
            payload.extend_from_slice(synopsis);
            OP_UPDATE_MERGE
        }
        Request::DropKey { key } => {
            if !keyed {
                return Err(v1_cannot_express());
            }
            put_key(&mut payload, key);
            OP_DROP_KEY
        }
    };
    Ok(seal_message_versioned(version, op, &payload))
}

/// Encodes a response into one complete wire message (length prefix
/// included) at the current [`PROTOCOL_VERSION`].
pub fn encode_response(response: &Response) -> Vec<u8> {
    encode_response_versioned(PROTOCOL_VERSION, response)
        .expect("the current protocol version encodes every response")
}

/// Encodes a response at an explicit protocol version — how a server mirrors
/// a v1 request with a v1 answer frame. The v2-only response kinds
/// (`StoreStats`/`KeyList`/`MergedView`/`Dropped`) refuse to encode at v1,
/// and v2-only error codes ([`ErrorCode::UnknownKey`]/[`ErrorCode::InvalidKey`])
/// downgrade to [`ErrorCode::InvalidQuery`] inside a v1 error frame
/// ([`ErrorCode::for_version`]) rather than leaking a byte v1 never defined.
pub fn encode_response_versioned(version: u16, response: &Response) -> CodecResult<Vec<u8>> {
    let mut out = Vec::new();
    encode_response_into(version, response, &mut out)?;
    Ok(out)
}

/// Appends a complete response wire message (length prefix included) onto
/// `out`, building the frame in place: no intermediate payload `Vec`, and no
/// allocation at all once `out` has warmed-up capacity. This is the evented
/// server's steady-state write path; [`encode_response_versioned`] delegates
/// here, so both server modes emit byte-identical frames by construction.
/// On error `out` is restored to its original length.
pub fn encode_response_into(
    version: u16,
    response: &Response,
    out: &mut Vec<u8>,
) -> CodecResult<()> {
    check_encodable_version(version)?;
    let start = out.len();
    // Placeholder length prefix, patched once the payload size is known.
    out.extend_from_slice(&[0u8; LENGTH_PREFIX_BYTES]);
    out.extend_from_slice(&NET_MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.push(response.op());
    if let Err(err) = write_response_payload(version, response, out) {
        out.truncate(start);
        return Err(err);
    }
    // frame = magic + version + op + payload + the 4-byte CRC trailer below.
    let frame_len = out.len() - start - LENGTH_PREFIX_BYTES + 4;
    out[start..start + LENGTH_PREFIX_BYTES].copy_from_slice(&(frame_len as u32).to_le_bytes());
    let crc = crc32(&out[start + LENGTH_PREFIX_BYTES..]);
    out.extend_from_slice(&crc.to_le_bytes());
    Ok(())
}

fn write_response_payload(
    version: u16,
    response: &Response,
    payload: &mut Vec<u8>,
) -> CodecResult<()> {
    match response {
        Response::CdfBatch { epoch, values } => {
            put_u64(payload, *epoch);
            put_u64(payload, values.len() as u64);
            for &v in values {
                put_f64(payload, v);
            }
        }
        Response::QuantileBatch { epoch, indices } => {
            put_u64(payload, *epoch);
            put_u64(payload, indices.len() as u64);
            for &i in indices {
                put_u64(payload, i);
            }
        }
        Response::MassBatch { epoch, masses } => {
            put_u64(payload, *epoch);
            put_u64(payload, masses.len() as u64);
            for &m in masses {
                put_f64(payload, m);
            }
        }
        Response::Stats { epoch, synopsis } => {
            put_u64(payload, *epoch);
            match synopsis {
                None => payload.push(0),
                Some(stats) => {
                    payload.push(1);
                    put_u64(payload, stats.domain);
                    put_u64(payload, stats.pieces);
                    put_u64(payload, stats.target_k);
                    put_f64(payload, stats.total_mass);
                    put_u64(payload, stats.estimator.len() as u64);
                    payload.extend_from_slice(stats.estimator.as_bytes());
                    // The maintenance counters shipped with v3; mirroring an
                    // older request omits them (the decoder defaults to 0).
                    if version >= 3 {
                        put_u64(payload, stats.merges);
                        put_u64(payload, stats.refits);
                        put_f64(payload, stats.merge_error);
                    }
                }
            }
        }
        Response::StoreStats { epoch, stats } => {
            if version < 2 {
                return Err(v1_cannot_express());
            }
            put_u64(payload, *epoch);
            put_u64(payload, stats.keys);
            put_u64(payload, stats.served);
            put_u64(payload, stats.total_pieces);
            put_u64(payload, stats.min_epoch);
            put_u64(payload, stats.max_epoch);
            if version >= 3 {
                put_u64(payload, stats.merges);
                put_u64(payload, stats.refits);
                put_f64(payload, stats.merged_mass);
                put_f64(payload, stats.merge_error);
            }
        }
        Response::KeyList { epoch, keys } => {
            if version < 2 {
                return Err(v1_cannot_express());
            }
            put_u64(payload, *epoch);
            put_u64(payload, keys.len() as u64);
            for key in keys {
                put_key(payload, key);
            }
        }
        Response::MergedView { epoch, keys, synopsis } => {
            if version < 2 {
                return Err(v1_cannot_express());
            }
            put_u64(payload, *epoch);
            put_u64(payload, *keys);
            put_u64(payload, synopsis.len() as u64);
            payload.extend_from_slice(synopsis);
        }
        Response::Updated { epoch } => {
            put_u64(payload, *epoch);
        }
        Response::Dropped { epoch, existed } => {
            if version < 2 {
                return Err(v1_cannot_express());
            }
            put_u64(payload, *epoch);
            payload.push(u8::from(*existed));
        }
        Response::Error { epoch, code, message } => {
            put_u64(payload, *epoch);
            // Mirroring a v1 request must not leak a v2-only code byte into
            // the v1 frame — old clients have no decoding for it.
            payload.push(code.for_version(version).to_u8());
            put_u64(payload, message.len() as u64);
            payload.extend_from_slice(message.as_bytes());
        }
    };
    Ok(())
}

/// A version this build can *write*: same range it reads.
fn check_encodable_version(version: u16) -> CodecResult<()> {
    if !(crate::frame::MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
        return Err(CodecError::UnsupportedVersion { found: version, supported: PROTOCOL_VERSION });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Decoding.
// ---------------------------------------------------------------------------

/// Decodes a request from a verified frame's announced version, op byte and
/// payload (the shape [`crate::frame::check_envelope`] returns). v1 payloads
/// decode keyless and address [`DEFAULT_KEY`]; v2-only op bytes inside a v1
/// frame are unknown ops.
pub fn decode_request_frame(version: u16, op: u8, payload: &[u8]) -> CodecResult<Request> {
    let keyed = version >= 2;
    let mut reader = Reader::new(payload);
    let key_for = |reader: &mut Reader<'_>| -> CodecResult<String> {
        if keyed {
            read_key(reader)
        } else {
            Ok(DEFAULT_KEY.to_owned())
        }
    };
    let request = match op {
        OP_CDF_BATCH => {
            let key = key_for(&mut reader)?;
            let count = reader.count("cdf indices", 8)?;
            let mut xs = Vec::with_capacity(count);
            for _ in 0..count {
                xs.push(reader.u64()?);
            }
            Request::CdfBatch { key, xs }
        }
        OP_QUANTILE_BATCH => {
            let key = key_for(&mut reader)?;
            let count = reader.count("quantile fractions", 8)?;
            let mut ps = Vec::with_capacity(count);
            for _ in 0..count {
                ps.push(reader.f64()?);
            }
            Request::QuantileBatch { key, ps }
        }
        OP_MASS_BATCH => {
            let key = key_for(&mut reader)?;
            let count = reader.count("mass ranges", 16)?;
            let mut ranges = Vec::with_capacity(count);
            for _ in 0..count {
                let start = reader.u64()?;
                let end = reader.u64()?;
                ranges.push((start, end));
            }
            Request::MassBatch { key, ranges }
        }
        OP_STATS => Request::Stats { key: key_for(&mut reader)? },
        OP_STORE_STATS if keyed => Request::StoreStats,
        OP_LIST_KEYS if keyed => Request::ListKeys,
        OP_MERGED_VIEW if keyed => Request::MergedView { budget: reader.u64()? },
        OP_PUBLISH => {
            let key = key_for(&mut reader)?;
            Request::Publish { key, synopsis: reader.section("synopsis blob")?.to_vec() }
        }
        OP_UPDATE_MERGE => {
            let key = key_for(&mut reader)?;
            let budget = reader.u64()?;
            let synopsis = reader.section("synopsis blob")?.to_vec();
            Request::UpdateMerge { key, budget, synopsis }
        }
        OP_DROP_KEY if keyed => Request::DropKey { key: read_key(&mut reader)? },
        found => return Err(CodecError::InvalidTag { what: "request op", found }),
    };
    reader.finish()?;
    Ok(request)
}

/// Decodes a response from a verified frame's announced version, op byte and
/// payload. The v2-only response ops inside a v1 frame are unknown ops.
pub fn decode_response_frame(version: u16, op: u8, payload: &[u8]) -> CodecResult<Response> {
    let keyed = version >= 2;
    // The op is validated before the payload is touched, so an unknown op is
    // reported as such rather than as a truncation further in.
    let known =
        matches!(op, OP_CDF_OK | OP_QUANTILE_OK | OP_MASS_OK | OP_STATS_OK | OP_UPDATED | OP_ERROR)
            || (keyed
                && matches!(
                    op,
                    OP_STORE_STATS_OK | OP_LIST_KEYS_OK | OP_MERGED_VIEW_OK | OP_DROPPED
                ));
    if !known {
        return Err(CodecError::InvalidTag { what: "response op", found: op });
    }
    let mut reader = Reader::new(payload);
    let epoch = reader.u64()?;
    let response = match op {
        OP_CDF_OK => {
            let count = reader.count("cdf values", 8)?;
            let mut values = Vec::with_capacity(count);
            for _ in 0..count {
                values.push(reader.f64()?);
            }
            Response::CdfBatch { epoch, values }
        }
        OP_QUANTILE_OK => {
            let count = reader.count("quantile indices", 8)?;
            let mut indices = Vec::with_capacity(count);
            for _ in 0..count {
                indices.push(reader.u64()?);
            }
            Response::QuantileBatch { epoch, indices }
        }
        OP_MASS_OK => {
            let count = reader.count("mass values", 8)?;
            let mut masses = Vec::with_capacity(count);
            for _ in 0..count {
                masses.push(reader.f64()?);
            }
            Response::MassBatch { epoch, masses }
        }
        OP_STATS_OK => {
            let synopsis = match reader.u8()? {
                0 => None,
                1 => {
                    let domain = reader.u64()?;
                    let pieces = reader.u64()?;
                    let target_k = reader.u64()?;
                    let total_mass = reader.f64()?;
                    let name = reader.section("estimator name")?;
                    let estimator =
                        std::str::from_utf8(name).map_err(|_| CodecError::NonUtf8Name)?.to_string();
                    let (merges, refits, merge_error) = if version >= 3 {
                        (reader.u64()?, reader.u64()?, reader.f64()?)
                    } else {
                        (0, 0, 0.0)
                    };
                    Some(SynopsisStats {
                        domain,
                        pieces,
                        target_k,
                        total_mass,
                        estimator,
                        merges,
                        refits,
                        merge_error,
                    })
                }
                found => {
                    return Err(CodecError::InvalidTag { what: "stats synopsis presence", found })
                }
            };
            Response::Stats { epoch, synopsis }
        }
        OP_STORE_STATS_OK => {
            let mut stats = StoreWideStats {
                keys: reader.u64()?,
                served: reader.u64()?,
                total_pieces: reader.u64()?,
                min_epoch: reader.u64()?,
                max_epoch: reader.u64()?,
                merges: 0,
                refits: 0,
                merged_mass: 0.0,
                merge_error: 0.0,
            };
            if version >= 3 {
                stats.merges = reader.u64()?;
                stats.refits = reader.u64()?;
                stats.merged_mass = reader.f64()?;
                stats.merge_error = reader.f64()?;
            }
            Response::StoreStats { epoch, stats }
        }
        OP_LIST_KEYS_OK => {
            // Smallest possible key section: 8-byte length + 1 byte.
            let count = reader.count("keys", 9)?;
            let mut keys = Vec::with_capacity(count);
            for _ in 0..count {
                keys.push(read_key(&mut reader)?);
            }
            Response::KeyList { epoch, keys }
        }
        OP_MERGED_VIEW_OK => {
            let keys = reader.u64()?;
            let synopsis = reader.section("merged synopsis blob")?.to_vec();
            Response::MergedView { epoch, keys, synopsis }
        }
        OP_UPDATED => Response::Updated { epoch },
        OP_DROPPED => {
            let existed = match reader.u8()? {
                0 => false,
                1 => true,
                found => return Err(CodecError::InvalidTag { what: "dropped flag", found }),
            };
            Response::Dropped { epoch, existed }
        }
        OP_ERROR => {
            let code = ErrorCode::from_u8(reader.u8()?);
            // Lossy on purpose: the message is display-only detail from the
            // peer, and a mangled byte must not turn a typed error frame
            // into an undecodable one.
            let message = String::from_utf8_lossy(reader.section("error message")?).into_owned();
            Response::Error { epoch, code, message }
        }
        _ => unreachable!("op membership checked above"),
    };
    reader.finish()?;
    Ok(response)
}

/// Decodes a complete wire message (length prefix included) as a request,
/// honouring the version its envelope announces.
pub fn decode_request(message: &[u8]) -> CodecResult<Request> {
    let (version, op, payload) = split_message(message)?;
    decode_request_frame(version, op, payload)
}

/// Decodes a complete wire message (length prefix included) as a response,
/// honouring the version its envelope announces.
pub fn decode_response(message: &[u8]) -> CodecResult<Response> {
    let (version, op, payload) = split_message(message)?;
    decode_response_frame(version, op, payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::seal_message;

    fn round_trip_request(request: Request) {
        let decoded = decode_request(&encode_request(&request)).unwrap();
        assert_eq!(decoded, request);
    }

    fn round_trip_response(response: Response) {
        let decoded = decode_response(&encode_response(&response)).unwrap();
        assert_eq!(decoded, response);
    }

    #[test]
    fn every_request_kind_round_trips() {
        round_trip_request(Request::CdfBatch { key: "t".into(), xs: vec![] });
        round_trip_request(Request::CdfBatch { key: "api/login".into(), xs: vec![0, 7, u64::MAX] });
        round_trip_request(Request::QuantileBatch { key: "q".into(), ps: vec![0.0, 0.5, 1.0] });
        round_trip_request(Request::MassBatch { key: "m".into(), ranges: vec![(0, 0), (3, 99)] });
        round_trip_request(Request::Stats { key: DEFAULT_KEY.into() });
        round_trip_request(Request::StoreStats);
        round_trip_request(Request::ListKeys);
        round_trip_request(Request::MergedView { budget: 12 });
        round_trip_request(Request::Publish {
            key: "p".into(),
            synopsis: b"AHISTSYN-ish bytes".to_vec(),
        });
        round_trip_request(Request::UpdateMerge {
            key: "u".into(),
            budget: 11,
            synopsis: vec![1, 2, 3],
        });
        round_trip_request(Request::DropKey { key: "gone".into() });
    }

    #[test]
    fn every_response_kind_round_trips() {
        round_trip_response(Response::CdfBatch { epoch: 3, values: vec![0.25, 1.0] });
        round_trip_response(Response::QuantileBatch { epoch: 4, indices: vec![0, 99] });
        round_trip_response(Response::MassBatch { epoch: 5, masses: vec![-1.5, 0.0] });
        round_trip_response(Response::Stats { epoch: 0, synopsis: None });
        round_trip_response(Response::Stats {
            epoch: 9,
            synopsis: Some(SynopsisStats {
                domain: 256,
                pieces: 13,
                target_k: 5,
                total_mass: 960.0,
                estimator: "merging".into(),
                merges: 41,
                refits: 3,
                merge_error: 0.625,
            }),
        });
        round_trip_response(Response::StoreStats {
            epoch: 17,
            stats: StoreWideStats {
                keys: 100_000,
                served: 99_999,
                total_pieces: 1_234_567,
                min_epoch: 0,
                max_epoch: 17,
                merges: 4_242,
                refits: 17,
                merged_mass: 1e9,
                merge_error: 123.5,
            },
        });
        round_trip_response(Response::KeyList {
            epoch: 2,
            keys: vec!["a".into(), "b".into(), "c".into()],
        });
        round_trip_response(Response::KeyList { epoch: 0, keys: vec![] });
        round_trip_response(Response::MergedView {
            epoch: 8,
            keys: 3,
            synopsis: b"AHISTSYN-ish".to_vec(),
        });
        round_trip_response(Response::Updated { epoch: 42 });
        round_trip_response(Response::Dropped { epoch: 4, existed: true });
        round_trip_response(Response::Dropped { epoch: 0, existed: false });
        round_trip_response(Response::Error {
            epoch: 7,
            code: ErrorCode::InvalidQuery,
            message: "index 900 out of domain 256".into(),
        });
    }

    #[test]
    fn v1_round_trips_keyless_default_requests() {
        let requests = [
            Request::CdfBatch { key: DEFAULT_KEY.into(), xs: vec![1, 2] },
            Request::QuantileBatch { key: DEFAULT_KEY.into(), ps: vec![0.5] },
            Request::MassBatch { key: DEFAULT_KEY.into(), ranges: vec![(0, 9)] },
            Request::Stats { key: DEFAULT_KEY.into() },
            Request::Publish { key: DEFAULT_KEY.into(), synopsis: vec![1] },
            Request::UpdateMerge { key: DEFAULT_KEY.into(), budget: 4, synopsis: vec![2] },
        ];
        for request in requests {
            let v1 = encode_request_versioned(1, &request).unwrap();
            let decoded = decode_request(&v1).unwrap();
            assert_eq!(decoded, request, "v1 frames decode back with the default key");
            // And the v1 bytes are strictly shorter than v2 (no key section).
            assert!(v1.len() < encode_request(&request).len());
        }
    }

    #[test]
    fn v1_refuses_keys_and_keyed_ops() {
        let keyed_request = Request::CdfBatch { key: "tenant".into(), xs: vec![1] };
        assert!(matches!(
            encode_request_versioned(1, &keyed_request),
            Err(CodecError::InvalidKey { .. })
        ));
        for request in [Request::StoreStats, Request::ListKeys, Request::MergedView { budget: 4 }] {
            assert!(matches!(
                encode_request_versioned(1, &request),
                Err(CodecError::UnsupportedVersion { found: 1, .. })
            ));
        }
        assert!(matches!(
            encode_request_versioned(1, &Request::DropKey { key: DEFAULT_KEY.into() }),
            Err(CodecError::UnsupportedVersion { found: 1, .. })
        ));
        // The v2-only response kinds refuse v1 too.
        let dropped = Response::Dropped { epoch: 1, existed: true };
        assert!(encode_response_versioned(1, &dropped).is_err());
        // Unknown versions refuse outright.
        assert!(encode_request_versioned(0, &Request::ListKeys).is_err());
        assert!(encode_request_versioned(4, &Request::ListKeys).is_err());
    }

    #[test]
    fn v2_stats_frames_omit_and_zero_the_maintenance_counters() {
        // A v3 build mirroring a v2 peer drops the counters on the wire; the
        // decoder fills zeros, so a v2 exchange round-trips exactly with the
        // maintenance fields blanked.
        let stats = Response::Stats {
            epoch: 9,
            synopsis: Some(SynopsisStats {
                domain: 64,
                pieces: 7,
                target_k: 3,
                total_mass: 128.0,
                estimator: "merging".into(),
                merges: 99,
                refits: 4,
                merge_error: 1.5,
            }),
        };
        let v2 = encode_response_versioned(2, &stats).unwrap();
        let v3 = encode_response_versioned(3, &stats).unwrap();
        assert!(v2.len() < v3.len(), "the v2 frame must omit the counters");
        match decode_response(&v2).unwrap() {
            Response::Stats { synopsis: Some(decoded), .. } => {
                assert_eq!((decoded.merges, decoded.refits, decoded.merge_error), (0, 0, 0.0));
                assert_eq!(decoded.domain, 64);
                assert_eq!(decoded.estimator, "merging");
            }
            other => panic!("wrong response: {other:?}"),
        }
        assert_eq!(decode_response(&v3).unwrap(), stats);

        let wide = Response::StoreStats {
            epoch: 3,
            stats: StoreWideStats {
                keys: 2,
                served: 2,
                total_pieces: 22,
                min_epoch: 1,
                max_epoch: 3,
                merges: 7,
                refits: 1,
                merged_mass: 640.0,
                merge_error: 0.25,
            },
        };
        let v2 = encode_response_versioned(2, &wide).unwrap();
        match decode_response(&v2).unwrap() {
            Response::StoreStats { stats: decoded, .. } => {
                assert_eq!((decoded.merges, decoded.refits), (0, 0));
                assert_eq!((decoded.merged_mass, decoded.merge_error), (0.0, 0.0));
                assert_eq!(decoded.keys, 2);
                assert_eq!(decoded.max_epoch, 3);
            }
            other => panic!("wrong response: {other:?}"),
        }
        let v3 = encode_response_versioned(3, &wide).unwrap();
        assert_eq!(decode_response(&v3).unwrap(), wide);
    }

    #[test]
    fn v2_only_ops_in_a_v1_frame_are_unknown_ops() {
        use crate::frame::seal_message_versioned;
        for op in [0x05u8, 0x06, 0x07, 0x12] {
            let message = seal_message_versioned(1, op, &[]);
            assert!(
                matches!(
                    decode_request(&message),
                    Err(CodecError::InvalidTag { what: "request op", .. })
                ),
                "op {op:#04x} must be unknown under v1"
            );
        }
        for op in [0x85u8, 0x86, 0x87, 0x91] {
            let mut payload = Vec::new();
            put_u64(&mut payload, 1);
            let message = seal_message_versioned(1, op, &payload);
            assert!(
                matches!(
                    decode_response(&message),
                    Err(CodecError::InvalidTag { what: "response op", .. })
                ),
                "op {op:#04x} must be unknown under v1"
            );
        }
    }

    #[test]
    fn malformed_keys_are_typed_errors() {
        // Empty key.
        let mut payload = Vec::new();
        put_u64(&mut payload, 0);
        let message = seal_message(OP_STATS, &payload);
        assert!(matches!(decode_request(&message), Err(CodecError::InvalidKey { .. })));

        // Non-UTF-8 key.
        let mut payload = Vec::new();
        put_u64(&mut payload, 2);
        payload.extend_from_slice(&[0xFF, 0xFE]);
        let message = seal_message(OP_STATS, &payload);
        assert!(matches!(decode_request(&message), Err(CodecError::InvalidKey { .. })));

        // Oversized key.
        let long = "k".repeat(hist_persist::MAX_KEY_BYTES + 1);
        let mut payload = Vec::new();
        put_key(&mut payload, &long);
        let message = seal_message(OP_STATS, &payload);
        assert!(matches!(decode_request(&message), Err(CodecError::InvalidKey { .. })));
    }

    #[test]
    fn cdf_values_ship_as_raw_bits() {
        // Negative zero and a subnormal survive exactly — the wire carries
        // IEEE-754 bits, not a decimal rendering.
        let values = vec![-0.0, f64::MIN_POSITIVE / 4.0];
        let encoded = encode_response(&Response::CdfBatch { epoch: 1, values: values.clone() });
        match decode_response(&encoded).unwrap() {
            Response::CdfBatch { values: decoded, .. } => {
                let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&decoded), bits(&values));
            }
            other => panic!("wrong response: {other:?}"),
        }
    }

    #[test]
    fn error_codes_round_trip_including_unknown() {
        for raw in 0..=255u8 {
            assert_eq!(ErrorCode::from_u8(raw).to_u8(), raw);
        }
        assert_eq!(ErrorCode::from_u8(9), ErrorCode::UnknownKey);
        assert_eq!(ErrorCode::from_u8(10), ErrorCode::InvalidKey);
        assert_eq!(ErrorCode::from_u8(200), ErrorCode::Unknown(200));
    }

    #[test]
    fn v1_error_frames_never_carry_v2_only_codes() {
        use crate::frame::check_envelope;
        // Regression: mirroring a v1 request's version used to stamp the
        // v2-only UnknownKey/InvalidKey bytes into v1 error frames, which v1
        // clients have no decoding for. At v1 they downgrade to InvalidQuery;
        // at v2 they pass through untouched.
        for code in [ErrorCode::UnknownKey, ErrorCode::InvalidKey] {
            let response =
                Response::Error { epoch: 3, code, message: "no such key `api/login`".into() };
            let message = encode_response_versioned(1, &response).unwrap();
            let (version, op, payload) = check_envelope(&message[4..]).unwrap();
            assert_eq!(version, 1);
            match decode_response_frame(version, op, payload).unwrap() {
                Response::Error { epoch, code, message } => {
                    assert_eq!(epoch, 3);
                    assert_eq!(code, ErrorCode::InvalidQuery, "v1 must get a v1-era code");
                    assert_eq!(message, "no such key `api/login`");
                }
                other => panic!("expected an error frame, got {other:?}"),
            }

            // v2 frames keep the precise code.
            let message = encode_response_versioned(2, &response).unwrap();
            let (version, op, payload) = check_envelope(&message[4..]).unwrap();
            match decode_response_frame(version, op, payload).unwrap() {
                Response::Error { code: decoded, .. } => assert_eq!(decoded, code),
                other => panic!("expected an error frame, got {other:?}"),
            }
        }

        // v1-era codes and foreign (Unknown) passthrough bytes are untouched
        // at both versions.
        for code in [ErrorCode::MalformedFrame, ErrorCode::EmptyStore, ErrorCode::Unknown(200)] {
            assert_eq!(code.for_version(1), code);
            assert_eq!(code.for_version(2), code);
        }
    }

    #[test]
    fn request_and_response_ops_reject_each_other() {
        let request = encode_request(&Request::Stats { key: DEFAULT_KEY.into() });
        assert!(matches!(
            decode_response(&request),
            Err(CodecError::InvalidTag { what: "response op", .. })
        ));
        let response = encode_response(&Response::Updated { epoch: 1 });
        assert!(matches!(
            decode_request(&response),
            Err(CodecError::InvalidTag { what: "request op", .. })
        ));
    }

    #[test]
    fn hostile_counts_are_rejected_before_allocation() {
        // A CdfBatch announcing u64::MAX indices inside a valid envelope.
        let mut payload = Vec::new();
        put_key(&mut payload, DEFAULT_KEY);
        put_u64(&mut payload, u64::MAX);
        let message = seal_message(OP_CDF_BATCH, &payload);
        assert!(matches!(
            decode_request(&message),
            Err(CodecError::CountOutOfBounds { count: u64::MAX, .. })
        ));

        // A KeyList announcing u64::MAX keys.
        let mut payload = Vec::new();
        put_u64(&mut payload, 1); // epoch
        put_u64(&mut payload, u64::MAX);
        let message = seal_message(OP_LIST_KEYS_OK, &payload);
        assert!(matches!(
            decode_response(&message),
            Err(CodecError::CountOutOfBounds { count: u64::MAX, .. })
        ));
    }

    #[test]
    fn trailing_payload_bytes_are_rejected() {
        let mut payload = Vec::new();
        put_key(&mut payload, DEFAULT_KEY);
        put_u64(&mut payload, 0); // zero indices…
        payload.extend_from_slice(b"junk"); // …then junk
        let message = seal_message(OP_CDF_BATCH, &payload);
        assert!(matches!(
            decode_request(&message),
            Err(CodecError::TrailingBytes { remaining: 4 })
        ));
    }
}
