//! # hist-net
//!
//! The network serving layer: a dependency-free `std::net` TCP protocol that
//! puts the workspace's synopses on the wire — queries, admin updates and
//! stats, all over one framed binary format.
//!
//! The ROADMAP's north star is serving heavy traffic from many users; every
//! layer below this one (fit, merge, stream, parallel build, concurrent
//! store, durable codec) lives inside a single process. This crate closes
//! the loop: a [`HistServer`] runs a concurrent accept loop over the
//! existing [`SynopsisStore`](hist_serve::SynopsisStore) (reads wait-free,
//! writes serialized, every response stamped with the snapshot epoch), and a
//! blocking [`HistClient`] exposes batch helpers whose answers are
//! **bit-identical** to querying the local [`Synopsis`](hist_core::Synopsis)
//! directly — `f64`s travel as raw IEEE-754 bits, and published synopses
//! ship in the `hist-persist` `AHISTSYN` encoding whose decode path is
//! already proven bit-exact.
//!
//! ## Wire format
//!
//! Every message is one frame (see [`frame`]):
//!
//! ```text
//! length u32 LE | "AHISTNET" | version u16 LE | op u8 | payload | crc32 u32 LE
//! ```
//!
//! Request ops: `CdfBatch` (0x01), `QuantileBatch` (0x02), `MassBatch`
//! (0x03), `Stats` (0x04), `Publish` (0x10), `UpdateMerge` (0x11). Response
//! ops mirror them (`| 0x80`), plus `Updated` (0x90) and the typed `Error`
//! frame (0xEE). The protocol version is tied to the persist format version
//! by a compile-time assertion, because `Publish`/`UpdateMerge` payloads are
//! `AHISTSYN` containers.
//!
//! ## Safety on hostile peers
//!
//! The server never trusts the wire: the length prefix is checked against
//! [`ServerConfig::max_frame_bytes`] *before* any allocation, payload
//! parsing funnels through the bounded `hist_persist::wire::Reader` (every
//! count validated against the bytes actually present), published synopses
//! go through the validating `hist-persist` decoder, and each connection
//! carries a request budget. Any invalid input is answered with a typed
//! error frame — or the connection is closed where the stream can no longer
//! be re-synchronized — and never a panic or an attacker-sized allocation.
//! The workspace corruption suite (`tests/net_corruption.rs`) drives
//! truncations, byte flips, forged lengths and random soup against a live
//! server to keep this true.
//!
//! ## Example: serve, query, update
//!
//! ```
//! use std::sync::Arc;
//! use hist_core::{Estimator, EstimatorBuilder, GreedyMerging, Signal};
//! use hist_net::{HistClient, HistServer, ServerConfig};
//! use hist_serve::SynopsisStore;
//!
//! let fit = |level: f64| {
//!     let values: Vec<f64> = (0..128).map(|i| level + ((i / 64) % 2) as f64).collect();
//!     GreedyMerging::new(EstimatorBuilder::new(4))
//!         .fit(&Signal::from_dense(values).unwrap())
//!         .unwrap()
//! };
//!
//! // An ephemeral loopback server over a shared store.
//! let store = Arc::new(SynopsisStore::new());
//! let server = HistServer::bind("127.0.0.1:0", store, ServerConfig::default()).unwrap();
//!
//! let mut client = HistClient::connect(server.local_addr()).unwrap();
//! let first = client.publish(&fit(1.0)).unwrap();
//! let answers = client.quantile_batch(&[0.25, 0.5, 0.75]).unwrap();
//! assert_eq!(answers.epoch, first);
//!
//! // A background refit merges the adjacent chunk in; the epoch advances.
//! let second = client.update_merge(&fit(2.0), 9).unwrap();
//! assert!(second > first);
//! let stats = client.stats().unwrap();
//! assert_eq!(stats.epoch, second);
//! assert_eq!(stats.synopsis.unwrap().domain, 256);
//! ```

pub mod client;
pub mod error;
pub mod frame;
pub mod proto;
pub mod server;

pub use client::{HistClient, Stamped, StoreStats};
pub use error::{NetError, NetResult};
pub use frame::{
    check_envelope, read_message, seal_message, split_message, write_message,
    DEFAULT_MAX_FRAME_BYTES, ENVELOPE_BYTES, LENGTH_PREFIX_BYTES, NET_MAGIC, PROTOCOL_VERSION,
};
pub use proto::{
    decode_request, decode_response, encode_request, encode_response, ErrorCode, Request, Response,
    SynopsisStats,
};
pub use server::{HistServer, ServerConfig};
