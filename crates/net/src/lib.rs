//! # hist-net
//!
//! The network serving layer: a dependency-free `std::net` TCP protocol that
//! puts the workspace's synopses on the wire — keyed multi-tenant queries,
//! admin updates and stats, all over one framed binary format.
//!
//! The ROADMAP's north star is serving heavy traffic from many users; every
//! layer below this one (fit, merge, stream, parallel build, concurrent
//! store, durable codec) lives inside a single process. This crate closes
//! the loop: a [`HistServer`] serves the keyed
//! [`StoreMap`](hist_serve::StoreMap) (one epoch/snapshot store per
//! tenant/metric key — reads wait-free, writes serialized per key, every
//! response stamped with the snapshot epoch) in either of two I/O modes
//! behind one API — thread-per-connection blocking I/O
//! ([`ServerMode::Blocking`]) or a pipelining epoll/poll readiness loop
//! ([`ServerMode::Evented`], see [`evented`]) — and a blocking [`HistClient`]
//! exposes batch helpers whose answers are **bit-identical** to querying the
//! local [`Synopsis`](hist_core::Synopsis) directly — `f64`s travel as raw
//! IEEE-754 bits, and published synopses ship in the `hist-persist`
//! `AHISTSYN` encoding whose decode path is already proven bit-exact.
//!
//! ## Wire format
//!
//! Every message is one frame (see [`frame`]):
//!
//! ```text
//! length u32 LE | "AHISTNET" | version u16 LE | op u8 | payload | crc32 u32 LE
//! ```
//!
//! **Protocol v3** (current): the v2 keyed layout with maintenance
//! counters appended to the `Stats`/`StoreStats` answers (merges, refits,
//! accumulated merge-error bound; requests are unchanged). Every
//! query/admin payload opens with a *key* section (length-prefixed,
//! non-empty UTF-8, at most [`hist_persist::MAX_KEY_BYTES`] bytes)
//! addressing one store of the map.
//! Request ops: `CdfBatch` (0x01), `QuantileBatch` (0x02), `MassBatch`
//! (0x03), `Stats` (0x04), `StoreStats` (0x05), `ListKeys` (0x06),
//! `MergedView` (0x07), `Publish` (0x10), `UpdateMerge` (0x11), `DropKey`
//! (0x12). Response ops mirror them (`| 0x80`), plus `Updated` (0x90),
//! `Dropped` (0x91) and the typed `Error` frame (0xEE).
//!
//! **Protocol v2** (legacy) is the same keyed layout without the
//! maintenance counters; **protocol v1** (legacy) is the keyless
//! single-store layout — the server still decodes both (a v1 frame
//! addresses [`DEFAULT_KEY`](hist_serve::DEFAULT_KEY)) and mirrors the
//! request's version in its answer, omitting the newer fields, so
//! unmodified v1/v2 clients keep working against a maintained server. The version pair (persist format, wire protocol) is pinned
//! by a compile-time assertion, because `Publish`/`UpdateMerge` payloads are
//! `AHISTSYN` containers.
//!
//! ## Safety on hostile peers
//!
//! The server never trusts the wire: the length prefix is checked against
//! [`ServerConfig::max_frame_bytes`] *before* any allocation, payload
//! parsing funnels through the bounded `hist_persist::wire::Reader` (every
//! count validated against the bytes actually present), published synopses
//! go through the validating `hist-persist` decoder, and each connection
//! carries a request budget. Any invalid input is answered with a typed
//! error frame — or the connection is closed where the stream can no longer
//! be re-synchronized — and never a panic or an attacker-sized allocation.
//! The workspace corruption suite (`tests/net_corruption.rs`) drives
//! truncations, byte flips, forged lengths and random soup against a live
//! server to keep this true.
//!
//! ## Example: serve, query, update
//!
//! ```
//! use std::sync::Arc;
//! use hist_core::{Estimator, EstimatorBuilder, GreedyMerging, Signal};
//! use hist_net::{HistClient, HistServer, ServerConfig};
//! use hist_serve::StoreMap;
//!
//! let fit = |level: f64| {
//!     let values: Vec<f64> = (0..128).map(|i| level + ((i / 64) % 2) as f64).collect();
//!     GreedyMerging::new(EstimatorBuilder::new(4))
//!         .fit(&Signal::from_dense(values).unwrap())
//!         .unwrap()
//! };
//!
//! // An ephemeral loopback server over a shared keyed store map.
//! let map = Arc::new(StoreMap::new());
//! let server = HistServer::bind("127.0.0.1:0", map, ServerConfig::default()).unwrap();
//!
//! // Each tenant addresses its own key; this one serves "api/login".
//! let mut client =
//!     HistClient::connect(server.local_addr()).unwrap().with_key("api/login").unwrap();
//! let first = client.publish(&fit(1.0)).unwrap();
//! let answers = client.quantile_batch(&[0.25, 0.5, 0.75]).unwrap();
//! assert_eq!(answers.epoch, first);
//!
//! // A background refit merges the adjacent chunk in; the epoch advances.
//! let second = client.update_merge(&fit(2.0), 9).unwrap();
//! assert!(second > first);
//! let stats = client.stats().unwrap();
//! assert_eq!(stats.epoch, second);
//! assert_eq!(stats.synopsis.unwrap().domain, 256);
//!
//! // Store-wide ops see every key.
//! assert_eq!(client.list_keys().unwrap().value, vec!["api/login".to_string()]);
//! ```

pub mod client;
pub mod error;
pub mod evented;
pub mod frame;
pub mod proto;
pub mod server;

pub use client::{HistClient, Stamped, StoreStats};
pub use error::{NetError, NetResult};
pub use frame::{
    check_envelope, read_message, seal_message, seal_message_versioned, split_message,
    write_message, DEFAULT_MAX_FRAME_BYTES, ENVELOPE_BYTES, LENGTH_PREFIX_BYTES,
    MIN_PROTOCOL_VERSION, NET_MAGIC, PROTOCOL_VERSION,
};
pub use hist_serve::MergedView;
pub use proto::{
    decode_request, decode_response, encode_request, encode_request_versioned, encode_response,
    encode_response_into, encode_response_versioned, ErrorCode, Request, Response, StoreWideStats,
    SynopsisStats,
};
pub use server::{HistServer, ServerConfig, ServerMode};
