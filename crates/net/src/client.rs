//! The blocking client: one TCP connection, batch helpers mirroring the
//! [`Synopsis`](hist_core::Synopsis) query API, addressed at one key of the
//! server's multi-tenant store map.
//!
//! Every answer comes back [`Stamped`] with the epoch it was computed at
//! (the addressed key's epoch; store-wide answers carry the largest per-key
//! epoch), so callers can assert freshness and ordering: per key the server
//! hands out epochs monotonically, and two responses stamped with the *same*
//! epoch were answered by the *same* immutable snapshot.
//!
//! The client starts out addressing [`DEFAULT_KEY`]; [`HistClient::with_key`]
//! / [`HistClient::set_key`] retarget every subsequent query and admin call.
//! [`HistClient::with_protocol_version`] pins the wire version — v1 speaks
//! the legacy keyless layout (default key only, no store-wide ops), which is
//! how the compat suite drives a v2 server with v1 frames.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use hist_core::{Interval, Synopsis};
use hist_persist::{decode_synopsis, encode_synopsis, CodecError};
use hist_serve::{MergedView, DEFAULT_KEY};

use crate::error::{NetError, NetResult};
use crate::frame::{
    check_envelope, read_message, write_message, DEFAULT_MAX_FRAME_BYTES, MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
};
use crate::proto::{
    decode_response_frame, encode_request_versioned, Request, Response, StoreWideStats,
    SynopsisStats,
};

/// A value together with the epoch it was computed at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stamped<T> {
    /// Epoch of the snapshot (or publish) that produced `value`.
    pub epoch: u64,
    /// The answer itself.
    pub value: T,
}

/// Per-key store statistics as reported by the server.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreStats {
    /// The addressed key's epoch (0 before its first publish).
    pub epoch: u64,
    /// Summary of the key's served synopsis, or `None` if it serves nothing.
    pub synopsis: Option<SynopsisStats>,
}

/// A blocking connection to a [`HistServer`](crate::HistServer).
///
/// ```no_run
/// use hist_net::HistClient;
///
/// let mut client = HistClient::connect("127.0.0.1:4715").unwrap().with_key("api/login").unwrap();
/// let stats = client.stats().unwrap();
/// println!("serving epoch {}", stats.epoch);
/// let quantiles = client.quantile_batch(&[0.25, 0.5, 0.75]).unwrap();
/// println!("quartiles at epoch {}: {:?}", quantiles.epoch, quantiles.value);
/// ```
#[derive(Debug)]
pub struct HistClient {
    stream: TcpStream,
    max_frame_bytes: usize,
    key: String,
    version: u16,
    read_timeout: Option<Duration>,
}

impl HistClient {
    /// Connects to a server, addressing [`DEFAULT_KEY`] at the current
    /// protocol version.
    pub fn connect(addr: impl ToSocketAddrs) -> NetResult<Self> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream)
    }

    /// Connects with a deadline on the TCP handshake: an unresponsive or
    /// black-holed address fails with a typed [`NetError::Timeout`] after
    /// `timeout` instead of hanging for the OS default (minutes, on most
    /// platforms). Tries each resolved address in turn.
    pub fn connect_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> NetResult<Self> {
        let mut last: Option<std::io::Error> = None;
        for addr in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&addr, timeout) {
                Ok(stream) => return Self::from_stream(stream),
                Err(e) => last = Some(e),
            }
        }
        Err(match last {
            Some(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                ) =>
            {
                NetError::Timeout { what: "connect", after: timeout }
            }
            Some(e) => NetError::Io(e),
            None => NetError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to no socket addresses",
            )),
        })
    }

    fn from_stream(stream: TcpStream) -> NetResult<Self> {
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            key: DEFAULT_KEY.to_owned(),
            version: PROTOCOL_VERSION,
            read_timeout: None,
        })
    }

    /// Caps the response frames this client accepts. When mirroring the
    /// server's [`ServerConfig::max_frame_bytes`](crate::ServerConfig), allow
    /// for the constant per-frame overhead: a response can be a few bytes
    /// larger than the request that elicited it.
    pub fn with_max_frame_bytes(mut self, max_frame_bytes: usize) -> Self {
        self.max_frame_bytes = max_frame_bytes;
        self
    }

    /// Bounds how long a single response read may block (`None`, the
    /// default, waits forever). A server whose connection pool is fully
    /// occupied queues new connections instead of refusing them, so a
    /// timeout turns "the server is saturated" from a silent hang into a
    /// typed [`NetError::Timeout`].
    pub fn with_read_timeout(mut self, timeout: Option<Duration>) -> NetResult<Self> {
        self.stream.set_read_timeout(timeout)?;
        self.read_timeout = timeout;
        Ok(self)
    }

    /// Retargets every subsequent query and admin call at `key` (builder
    /// form). Rejects keys that violate the encoding rules.
    pub fn with_key(mut self, key: &str) -> NetResult<Self> {
        self.set_key(key)?;
        Ok(self)
    }

    /// Retargets every subsequent query and admin call at `key`.
    pub fn set_key(&mut self, key: &str) -> NetResult<()> {
        hist_persist::validate_key(key).map_err(NetError::Frame)?;
        key.clone_into(&mut self.key);
        Ok(())
    }

    /// The key this client currently addresses.
    #[inline]
    pub fn key(&self) -> &str {
        &self.key
    }

    /// Pins the wire protocol version this client speaks (builder form).
    /// Version 1 is the legacy keyless layout: it only addresses
    /// [`DEFAULT_KEY`] and cannot express the store-wide ops
    /// ([`list_keys`](Self::list_keys) and friends) — those return a typed
    /// encode error instead of lying on the wire.
    pub fn with_protocol_version(mut self, version: u16) -> NetResult<Self> {
        if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
            return Err(NetError::Frame(CodecError::UnsupportedVersion {
                found: version,
                supported: PROTOCOL_VERSION,
            }));
        }
        self.version = version;
        Ok(self)
    }

    /// The wire protocol version this client speaks.
    #[inline]
    pub fn protocol_version(&self) -> u16 {
        self.version
    }

    /// One request/response exchange.
    fn round_trip(&mut self, request: &Request) -> NetResult<Response> {
        let message = encode_request_versioned(self.version, request).map_err(NetError::Frame)?;
        write_message(&mut self.stream, &message)?;
        let frame = read_message(&mut self.stream, self.max_frame_bytes)
            .map_err(|e| self.classify_read_error(e))?
            .ok_or(NetError::Disconnected)?;
        let (version, op, payload) = check_envelope(&frame)?;
        let response = decode_response_frame(version, op, payload)?;
        if let Response::Error { epoch, code, message } = response {
            return Err(NetError::Remote { epoch, code, message });
        }
        Ok(response)
    }

    /// Maps a timed-out socket read to the typed [`NetError::Timeout`] when a
    /// read deadline is configured; every other error passes through.
    fn classify_read_error(&self, e: NetError) -> NetError {
        match (&e, self.read_timeout) {
            (NetError::Io(io), Some(after))
                if matches!(
                    io.kind(),
                    std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                ) =>
            {
                NetError::Timeout { what: "response read", after }
            }
            _ => e,
        }
    }

    /// The cdf at each index, answered from one snapshot of the addressed
    /// key — bit-identical to [`Synopsis::cdf`] on the published synopsis.
    pub fn cdf_batch(&mut self, xs: &[usize]) -> NetResult<Stamped<Vec<f64>>> {
        let request =
            Request::CdfBatch { key: self.key.clone(), xs: xs.iter().map(|&x| x as u64).collect() };
        match self.round_trip(&request)? {
            Response::CdfBatch { epoch, values } => Ok(Stamped { epoch, value: values }),
            other => Err(unexpected(&other)),
        }
    }

    /// The smallest index reaching each fraction — bit-identical to
    /// [`Synopsis::quantile_batch`] on the published synopsis.
    pub fn quantile_batch(&mut self, ps: &[f64]) -> NetResult<Stamped<Vec<usize>>> {
        let request = Request::QuantileBatch { key: self.key.clone(), ps: ps.to_vec() };
        match self.round_trip(&request)? {
            Response::QuantileBatch { epoch, indices } => {
                let value = indices
                    .into_iter()
                    .map(|i| {
                        usize::try_from(i).map_err(|_| {
                            NetError::Frame(hist_persist::CodecError::ValueOutOfRange {
                                what: "quantile index",
                            })
                        })
                    })
                    .collect::<NetResult<Vec<usize>>>()?;
                Ok(Stamped { epoch, value })
            }
            other => Err(unexpected(&other)),
        }
    }

    /// The estimated mass over each range — bit-identical to
    /// [`Synopsis::mass_batch`] on the published synopsis.
    pub fn mass_batch(&mut self, ranges: &[Interval]) -> NetResult<Stamped<Vec<f64>>> {
        let request = Request::MassBatch {
            key: self.key.clone(),
            ranges: ranges.iter().map(|r| (r.start() as u64, r.end() as u64)).collect(),
        };
        match self.round_trip(&request)? {
            Response::MassBatch { epoch, masses } => Ok(Stamped { epoch, value: masses }),
            other => Err(unexpected(&other)),
        }
    }

    /// The addressed key's epoch plus a summary of its served synopsis
    /// (piece count, domain, budget, mass, provenance) in one frame.
    pub fn stats(&mut self) -> NetResult<StoreStats> {
        match self.round_trip(&Request::Stats { key: self.key.clone() })? {
            Response::Stats { epoch, synopsis } => Ok(StoreStats { epoch, synopsis }),
            other => Err(unexpected(&other)),
        }
    }

    /// Store-wide summary: key count, served count, total pieces, epoch
    /// range. (Protocol v2 only.)
    pub fn store_stats(&mut self) -> NetResult<Stamped<StoreWideStats>> {
        match self.round_trip(&Request::StoreStats)? {
            Response::StoreStats { epoch, stats } => Ok(Stamped { epoch, value: stats }),
            other => Err(unexpected(&other)),
        }
    }

    /// Every key of the served store map, in canonical (ascending) order.
    /// (Protocol v2 only.)
    pub fn list_keys(&mut self) -> NetResult<Stamped<Vec<String>>> {
        match self.round_trip(&Request::ListKeys)? {
            Response::KeyList { epoch, keys } => Ok(Stamped { epoch, value: keys }),
            other => Err(unexpected(&other)),
        }
    }

    /// The merged global view: every served key's synopsis tree-merged down
    /// to `budget` pieces, decoded back to a queryable [`Synopsis`] — the
    /// same [`MergedView`] the in-process
    /// [`StoreMap::merged_view`](hist_serve::StoreMap::merged_view) returns.
    /// (Protocol v2 only.)
    pub fn merged_view(&mut self, budget: usize) -> NetResult<MergedView> {
        match self.round_trip(&Request::MergedView { budget: budget as u64 })? {
            Response::MergedView { epoch, keys, synopsis } => {
                let synopsis = decode_synopsis(&synopsis).map_err(NetError::Frame)?;
                Ok(MergedView { epoch, keys, synopsis })
            }
            other => Err(unexpected(&other)),
        }
    }

    /// Admin: replaces the addressed key's served synopsis (ships it in the
    /// `AHISTSYN` encoding), creating the key on first use. Returns the new
    /// epoch.
    pub fn publish(&mut self, synopsis: &Synopsis) -> NetResult<u64> {
        let request =
            Request::Publish { key: self.key.clone(), synopsis: encode_synopsis(synopsis) };
        match self.round_trip(&request)? {
            Response::Updated { epoch } => Ok(epoch),
            other => Err(unexpected(&other)),
        }
    }

    /// Admin: merges an adjacent-chunk synopsis into the addressed key's
    /// served one, re-merged down to `budget` pieces. Returns the new epoch.
    pub fn update_merge(&mut self, chunk: &Synopsis, budget: usize) -> NetResult<u64> {
        let request = Request::UpdateMerge {
            key: self.key.clone(),
            budget: budget as u64,
            synopsis: encode_synopsis(chunk),
        };
        match self.round_trip(&request)? {
            Response::Updated { epoch } => Ok(epoch),
            other => Err(unexpected(&other)),
        }
    }

    /// Admin: evicts `key` (not necessarily the addressed one) and its
    /// store. Returns whether the key existed, stamped with its last epoch.
    /// (Protocol v2 only.)
    pub fn drop_key(&mut self, key: &str) -> NetResult<Stamped<bool>> {
        match self.round_trip(&Request::DropKey { key: key.to_owned() })? {
            Response::Dropped { epoch, existed } => Ok(Stamped { epoch, value: existed }),
            other => Err(unexpected(&other)),
        }
    }
}

/// A structurally valid response of the wrong kind for the request — a
/// protocol violation by the peer, reported as a frame-level tag error.
fn unexpected(response: &Response) -> NetError {
    NetError::Frame(hist_persist::CodecError::InvalidTag {
        what: "response kind",
        found: response.op(),
    })
}
