//! The blocking client: one TCP connection, batch helpers mirroring the
//! [`Synopsis`](hist_core::Synopsis) query API.
//!
//! Every answer comes back [`Stamped`] with the store epoch it was computed
//! at, so callers can assert freshness and ordering: on a single connection
//! the server hands out epochs monotonically, and two responses stamped with
//! the *same* epoch were answered by the *same* immutable snapshot.

use std::net::{TcpStream, ToSocketAddrs};

use hist_core::{Interval, Synopsis};
use hist_persist::encode_synopsis;

use crate::error::{NetError, NetResult};
use crate::frame::{check_envelope, read_message, write_message, DEFAULT_MAX_FRAME_BYTES};
use crate::proto::{decode_response_frame, encode_request, Request, Response, SynopsisStats};

/// A value together with the store epoch it was computed at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stamped<T> {
    /// Epoch of the snapshot (or publish) that produced `value`.
    pub epoch: u64,
    /// The answer itself.
    pub value: T,
}

/// Store statistics as reported by the server.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreStats {
    /// Current store epoch (0 before the first publish).
    pub epoch: u64,
    /// Summary of the served synopsis, or `None` for an empty store.
    pub synopsis: Option<SynopsisStats>,
}

/// A blocking connection to a [`HistServer`](crate::HistServer).
///
/// ```no_run
/// use hist_net::HistClient;
///
/// let mut client = HistClient::connect("127.0.0.1:4715").unwrap();
/// let stats = client.stats().unwrap();
/// println!("serving epoch {}", stats.epoch);
/// let quantiles = client.quantile_batch(&[0.25, 0.5, 0.75]).unwrap();
/// println!("quartiles at epoch {}: {:?}", quantiles.epoch, quantiles.value);
/// ```
#[derive(Debug)]
pub struct HistClient {
    stream: TcpStream,
    max_frame_bytes: usize,
}

impl HistClient {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> NetResult<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream, max_frame_bytes: DEFAULT_MAX_FRAME_BYTES })
    }

    /// Caps the response frames this client accepts. When mirroring the
    /// server's [`ServerConfig::max_frame_bytes`](crate::ServerConfig), allow
    /// for the constant per-frame overhead: a response can be a few bytes
    /// larger than the request that elicited it.
    pub fn with_max_frame_bytes(mut self, max_frame_bytes: usize) -> Self {
        self.max_frame_bytes = max_frame_bytes;
        self
    }

    /// Bounds how long a single response read may block (`None`, the
    /// default, waits forever). A server whose connection pool is fully
    /// occupied queues new connections instead of refusing them, so a
    /// timeout turns "the server is saturated" from a silent hang into a
    /// typed [`NetError::Io`] timeout.
    pub fn with_read_timeout(self, timeout: Option<std::time::Duration>) -> NetResult<Self> {
        self.stream.set_read_timeout(timeout)?;
        Ok(self)
    }

    /// One request/response exchange.
    fn round_trip(&mut self, request: &Request) -> NetResult<Response> {
        write_message(&mut self.stream, &encode_request(request))?;
        let frame =
            read_message(&mut self.stream, self.max_frame_bytes)?.ok_or(NetError::Disconnected)?;
        let (op, payload) = check_envelope(&frame)?;
        let response = decode_response_frame(op, payload)?;
        if let Response::Error { epoch, code, message } = response {
            return Err(NetError::Remote { epoch, code, message });
        }
        Ok(response)
    }

    /// The cdf at each index, answered from one snapshot —
    /// bit-identical to [`Synopsis::cdf`] on the published synopsis.
    pub fn cdf_batch(&mut self, xs: &[usize]) -> NetResult<Stamped<Vec<f64>>> {
        let request = Request::CdfBatch(xs.iter().map(|&x| x as u64).collect());
        match self.round_trip(&request)? {
            Response::CdfBatch { epoch, values } => Ok(Stamped { epoch, value: values }),
            other => Err(unexpected(&other)),
        }
    }

    /// The smallest index reaching each fraction — bit-identical to
    /// [`Synopsis::quantile_batch`] on the published synopsis.
    pub fn quantile_batch(&mut self, ps: &[f64]) -> NetResult<Stamped<Vec<usize>>> {
        match self.round_trip(&Request::QuantileBatch(ps.to_vec()))? {
            Response::QuantileBatch { epoch, indices } => {
                let value = indices
                    .into_iter()
                    .map(|i| {
                        usize::try_from(i).map_err(|_| {
                            NetError::Frame(hist_persist::CodecError::ValueOutOfRange {
                                what: "quantile index",
                            })
                        })
                    })
                    .collect::<NetResult<Vec<usize>>>()?;
                Ok(Stamped { epoch, value })
            }
            other => Err(unexpected(&other)),
        }
    }

    /// The estimated mass over each range — bit-identical to
    /// [`Synopsis::mass_batch`] on the published synopsis.
    pub fn mass_batch(&mut self, ranges: &[Interval]) -> NetResult<Stamped<Vec<f64>>> {
        let request =
            Request::MassBatch(ranges.iter().map(|r| (r.start() as u64, r.end() as u64)).collect());
        match self.round_trip(&request)? {
            Response::MassBatch { epoch, masses } => Ok(Stamped { epoch, value: masses }),
            other => Err(unexpected(&other)),
        }
    }

    /// The store epoch plus a summary of the served synopsis.
    pub fn stats(&mut self) -> NetResult<StoreStats> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats { epoch, synopsis } => Ok(StoreStats { epoch, synopsis }),
            other => Err(unexpected(&other)),
        }
    }

    /// Admin: replaces the served synopsis (ships it in the `AHISTSYN`
    /// encoding). Returns the new epoch.
    pub fn publish(&mut self, synopsis: &Synopsis) -> NetResult<u64> {
        match self.round_trip(&Request::Publish(encode_synopsis(synopsis)))? {
            Response::Updated { epoch } => Ok(epoch),
            other => Err(unexpected(&other)),
        }
    }

    /// Admin: merges an adjacent-chunk synopsis into the served one,
    /// re-merged down to `budget` pieces. Returns the new epoch.
    pub fn update_merge(&mut self, chunk: &Synopsis, budget: usize) -> NetResult<u64> {
        let request =
            Request::UpdateMerge { budget: budget as u64, synopsis: encode_synopsis(chunk) };
        match self.round_trip(&request)? {
            Response::Updated { epoch } => Ok(epoch),
            other => Err(unexpected(&other)),
        }
    }
}

/// A structurally valid response of the wrong kind for the request — a
/// protocol violation by the peer, reported as a frame-level tag error.
fn unexpected(response: &Response) -> NetError {
    NetError::Frame(hist_persist::CodecError::InvalidTag {
        what: "response kind",
        found: response.op(),
    })
}
