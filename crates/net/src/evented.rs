//! The evented server mode: one readiness loop multiplexing every
//! connection over non-blocking sockets.
//!
//! ## Architecture
//!
//! A single `hist-net-evented` thread owns the listener, a
//! [`polling::Poller`] (epoll(7) on Linux, portable poll(2) everywhere else
//! — forceable via [`ServerConfig::force_poll_backend`]) and a slab of
//! connection states keyed by slot index. Readable wakeups append bytes to a
//! per-connection read buffer and *pipeline*: every complete frame in the
//! buffer is split off in one pass, so N requests written in one syscall
//! become one batch. Batches execute off-loop on the shared `hist-serve`
//! [`ThreadPool`] through the same [`Responder`] core the blocking mode
//! uses; a finished batch hands its encoded responses back through a
//! completion queue and wakes the loop via the poller's self-pipe
//! ([`polling::Poller::notify`]).
//!
//! ## Ordering
//!
//! Responses go out in request order, per connection, always: at most one
//! batch per connection is in flight (`busy`), frames arriving meanwhile
//! queue in `inbox`, and a batch encodes all of its responses into a single
//! staging buffer in order. A terminal error (oversized/short length prefix,
//! exhausted request budget) is sequenced *after* every previously accepted
//! frame's response, exactly where the blocking path would have emitted it.
//!
//! ## Buffer reuse
//!
//! The response write path recycles its buffers: staging buffers cycle
//! through a small per-connection spare pool, batch containers are handed
//! back by completions, and flushed frames leave via vectored writes from
//! the queued buffers themselves. In a warmed-up steady state a response
//! frame therefore costs zero allocations; every violation (a staging
//! buffer growing, the spare pool running dry, a queue container growing)
//! increments the counter behind
//! [`HistServer::write_path_allocations`](crate::HistServer::write_path_allocations),
//! which tests assert stays flat.
//!
//! ## Close semantics
//!
//! Mirrors the blocking path frame-for-frame: envelope/decode errors are
//! answered and the connection continues (the stream is still framed);
//! framing errors and budget exhaustion are answered at the minimum
//! protocol version, then the write side is half-closed and reads are
//! drained for up to two seconds so the kernel delivers the final frame
//! instead of clobbering it with an RST.

#![cfg(unix)]

use std::collections::VecDeque;
use std::io::{ErrorKind, IoSlice, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hist_serve::ThreadPool;
use polling::{Backend, Event, Events, Poller};

use crate::frame::{ENVELOPE_BYTES, LENGTH_PREFIX_BYTES, MIN_PROTOCOL_VERSION};
use crate::proto::{encode_response_into, ErrorCode, Response};
use crate::server::{answer_frame, Responder, ServerConfig};

/// Poller key of the listening socket. Slab keys count up from zero; the
/// shim reserves `u64::MAX` for its internal notify pipe, so this cannot
/// collide with either.
const LISTENER_KEY: usize = usize::MAX - 1;

/// Bytes per `read(2)` into a connection's read buffer.
const READ_CHUNK: usize = 16 * 1024;

/// Reads a wakeup may issue before yielding to other connections
/// (level-triggered readiness re-fires on leftovers).
const MAX_READS_PER_WAKEUP: usize = 64;

/// Buffers a single vectored write flushes at most.
const MAX_WRITE_VECTORS: usize = 8;

/// Staging buffers a connection keeps for reuse.
const SPARE_STAGING: usize = 2;

/// How long a closing connection drains reads / a shutting-down server
/// drains in-flight work — the same bound the blocking path uses.
const DRAIN_GRACE: Duration = Duration::from_secs(2);

/// Spawns the event-loop thread. Mirrors what `HistServer::bind` needs:
/// the returned handle joins on shutdown, `write_allocs` counts write-path
/// allocations for the buffer-reuse guarantee.
pub(crate) fn spawn(
    listener: TcpListener,
    responder: Arc<Responder>,
    shutdown: Arc<AtomicBool>,
    pool: Arc<ThreadPool>,
    config: ServerConfig,
    write_allocs: Arc<AtomicU64>,
) -> std::io::Result<JoinHandle<()>> {
    listener.set_nonblocking(true)?;
    let poller = Arc::new(if config.force_poll_backend {
        Poller::with_backend(Backend::Poll)?
    } else {
        Poller::new()?
    });
    poller.add(listener.as_raw_fd(), Event::readable(LISTENER_KEY))?;
    let completions = Arc::new(Completions {
        queue: Mutex::new(Vec::new()),
        notified: AtomicBool::new(false),
        poller: Arc::clone(&poller),
    });
    let mut event_loop = EventLoop {
        listener,
        poller,
        responder,
        pool,
        config,
        shutdown,
        completions,
        write_allocs,
        slots: Vec::new(),
        free: Vec::new(),
        pending: Vec::new(),
        scratch: vec![0u8; READ_CHUNK],
        stopping: None,
        draining: 0,
    };
    std::thread::Builder::new().name("hist-net-evented".into()).spawn(move || event_loop.run())
}

/// One batch's encoded responses travelling back from a pool worker to the
/// loop. `generation` guards against the slot having been recycled while
/// the batch was in flight.
struct Completion {
    token: usize,
    generation: u64,
    /// Every response of the batch, encoded in request order.
    staging: Vec<u8>,
    /// The read buffer the batch's frames lived in, emptied, handed back.
    buffer: Vec<u8>,
    /// The frame-range container, emptied, handed back for reuse.
    ranges: Vec<(usize, usize)>,
}

/// The loop↔worker hand-off: workers push, then wake the poller.
struct Completions {
    queue: Mutex<Vec<Completion>>,
    /// Coalesces wakeups: only the first push after a drain pays the
    /// self-pipe write syscall, no matter how many batches finish per cycle.
    notified: AtomicBool,
    poller: Arc<Poller>,
}

impl Completions {
    fn push(&self, completion: Completion) {
        self.queue.lock().expect("completion queue poisoned").push(completion);
        if !self.notified.swap(true, Ordering::AcqRel) {
            let _ = self.poller.notify();
        }
    }

    fn drain_into(&self, out: &mut Vec<Completion>) {
        // Clear the flag before draining: a push that lands after the drain
        // sees `false` and raises its own wakeup, so nothing is lost.
        self.notified.store(false, Ordering::Release);
        out.append(&mut self.queue.lock().expect("completion queue poisoned"));
    }
}

/// An entry of the response write queue: an encoded buffer and how much of
/// it has been written so far (non-zero only at the queue front).
struct WriteBuf {
    buf: Vec<u8>,
    pos: usize,
}

/// Per-connection state. All I/O is non-blocking; the loop is the only
/// thread touching it.
struct Conn {
    stream: TcpStream,
    /// Inbound bytes. `..rpos` is covered by `ranges` (parsed frames waiting
    /// for dispatch); `rpos..` is a partial frame. Dispatch hands the whole
    /// buffer to the worker zero-copy and moves the partial tail into a
    /// recycled spare, so frames are never copied out individually.
    rbuf: Vec<u8>,
    rpos: usize,
    /// Parsed frames (`(start, len)` into `rbuf`) waiting for the current
    /// batch to finish.
    ranges: Vec<(usize, usize)>,
    /// Encoded responses waiting for socket writability.
    outq: VecDeque<WriteBuf>,
    /// Reusable staging buffers (response encode targets).
    spare_staging: Vec<Vec<u8>>,
    /// Reusable read buffer (swap target at dispatch).
    spare_rbuf: Option<Vec<u8>>,
    /// Reusable frame-range container.
    spare_ranges: Option<Vec<(usize, usize)>>,
    /// A batch is in flight on the pool; frames queue in `ranges` meanwhile.
    busy: bool,
    /// Frames accepted toward `max_requests_per_connection`.
    parsed: u64,
    /// A terminal error to emit once all prior responses are out.
    fatal: Option<Response>,
    /// The fatal frame has been queued: the connection is terminal, inbound
    /// bytes are discarded from here on.
    fatal_queued: bool,
    /// Peer half-closed (or closed) its write side.
    read_closed: bool,
    /// We half-closed our write side (final frame flushed).
    write_shut: bool,
    /// Deadline for draining peer reads after `write_shut`.
    drain_deadline: Option<Instant>,
    /// Cached poller interest (readable, writable) to skip no-op syscalls.
    interest: (bool, bool),
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            rbuf: Vec::new(),
            rpos: 0,
            ranges: Vec::new(),
            outq: VecDeque::with_capacity(4),
            spare_staging: Vec::with_capacity(SPARE_STAGING),
            spare_rbuf: None,
            spare_ranges: None,
            busy: false,
            parsed: 0,
            fatal: None,
            fatal_queued: false,
            read_closed: false,
            write_shut: false,
            drain_deadline: None,
            interest: (true, false),
        }
    }

    /// The connection has nothing in flight and nothing buffered.
    fn quiescent(&self) -> bool {
        !self.busy && self.outq.is_empty()
    }
}

/// A slab slot: `generation` increments every time the slot is vacated, so
/// completions addressed to a previous occupant are recognized as stale.
struct Slot {
    generation: u64,
    conn: Option<Conn>,
}

struct EventLoop {
    listener: TcpListener,
    poller: Arc<Poller>,
    responder: Arc<Responder>,
    pool: Arc<ThreadPool>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    completions: Arc<Completions>,
    write_allocs: Arc<AtomicU64>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    /// Reused drain target for the completion queue.
    pending: Vec<Completion>,
    /// Loop-owned read target: sockets read into this one hot buffer and
    /// only the bytes actually received are appended to the connection's
    /// `rbuf`, so a fleet of mostly-idle connections costs no per-connection
    /// read-buffer footprint (and no `resize` memset per read syscall).
    scratch: Vec<u8>,
    /// Set when the shutdown flag is first observed: deadline for finishing
    /// in-flight batches and flushing queued responses.
    stopping: Option<Instant>,
    /// Connections currently holding a post-error read-drain deadline —
    /// lets the per-tick deadline sweep skip the slab entirely in the
    /// overwhelmingly common case of zero draining connections.
    draining: usize,
}

impl EventLoop {
    fn run(&mut self) {
        let mut events = Events::with_capacity(1024);
        loop {
            let _ = self.poller.wait(&mut events, Some(self.config.poll_interval));
            if self.stopping.is_none() && self.shutdown.load(Ordering::Acquire) {
                // Stop accepting and dispatching; give in-flight batches and
                // queued responses a bounded window to reach the wire.
                self.stopping = Some(Instant::now() + DRAIN_GRACE);
                let _ = self.poller.delete(self.listener.as_raw_fd());
            }
            self.apply_completions();
            for event in events.iter() {
                if event.key == LISTENER_KEY {
                    if self.stopping.is_none() {
                        self.accept_ready();
                    }
                } else {
                    self.handle_socket(event);
                }
            }
            self.sweep_deadlines();
            if let Some(deadline) = self.stopping {
                let mut live = self.slots.iter().filter_map(|s| s.conn.as_ref());
                if live.all(Conn::quiescent) || Instant::now() >= deadline {
                    return;
                }
            }
        }
    }

    /// Accepts every pending connection (the listener is level-triggered,
    /// but draining it here saves wakeups).
    fn accept_ready(&mut self) {
        loop {
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                // Transient resource errors (EMFILE): leave the rest for the
                // next readiness tick instead of hot-looping.
                Err(_) => return,
            };
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            let token = match self.free.pop() {
                Some(token) => token,
                None => {
                    self.slots.push(Slot { generation: 0, conn: None });
                    self.slots.len() - 1
                }
            };
            if self.poller.add(stream.as_raw_fd(), Event::readable(token)).is_err() {
                self.free.push(token);
                continue;
            }
            self.slots[token].conn = Some(Conn::new(stream));
        }
    }

    /// Routes one readiness event for a connection socket. Stale keys (the
    /// connection closed earlier in this same tick) are ignored.
    fn handle_socket(&mut self, event: Event) {
        let token = event.key;
        if self.slots.get(token).is_none_or(|slot| slot.conn.is_none()) {
            return;
        }
        if event.readable && !self.read_ready(token) {
            return;
        }
        self.service(token);
    }

    /// Drains the socket's readable bytes into the connection. Returns
    /// `false` when the connection was torn down.
    fn read_ready(&mut self, token: usize) -> bool {
        let conn = self.slots[token].conn.as_mut().expect("checked by caller");
        if conn.fatal.is_some() || conn.fatal_queued {
            // Terminal: discard inbound bytes (the blocking path's
            // post-error drain) so the peer's writes keep completing and
            // the final frame is deliverable.
            let mut scratch = [0u8; 4096];
            loop {
                match conn.stream.read(&mut scratch) {
                    Ok(0) => {
                        conn.read_closed = true;
                        return true;
                    }
                    Ok(_) => continue,
                    Err(e) if e.kind() == ErrorKind::WouldBlock => return true,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        self.close(token);
                        return false;
                    }
                }
            }
        }
        for _ in 0..MAX_READS_PER_WAKEUP {
            match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    conn.read_closed = true;
                    break;
                }
                Ok(n) => {
                    conn.rbuf.extend_from_slice(&self.scratch[..n]);
                    if n < self.scratch.len() {
                        // The socket had less than a full chunk: it is
                        // drained, so skip the would-block syscall (a
                        // level-triggered poller re-fires on new bytes).
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    // A failed socket with nobody left to answer: same
                    // silent teardown as the blocking path's `Fill::Failed`.
                    self.close(token);
                    return false;
                }
            }
        }
        parse_frames(conn, &self.config, &self.responder);
        true
    }

    /// Splits every complete frame out of the read buffer, then advances
    /// the connection's state machine: dispatch, fatal sequencing, flush,
    /// half-close, close, interest. Safe to call from any wakeup.
    fn service(&mut self, token: usize) {
        if self.stopping.is_none() {
            self.maybe_dispatch(token);
        }
        self.maybe_queue_fatal(token);
        if !self.flush_writes(token) {
            return;
        }
        self.maybe_finish(token);
    }

    /// Hands the parsed frames to a pool worker when the connection is idle
    /// — one batch in flight per connection keeps responses in order. The
    /// read buffer travels to the worker as-is (frames are answered straight
    /// out of it); only a partial trailing frame is moved into the recycled
    /// spare buffer that takes over reading.
    fn maybe_dispatch(&mut self, token: usize) {
        let conn = self.slots[token].conn.as_mut().expect("live connection");
        if conn.busy || conn.ranges.is_empty() {
            return;
        }
        let buffer = std::mem::replace(&mut conn.rbuf, conn.spare_rbuf.take().unwrap_or_default());
        let ranges =
            std::mem::replace(&mut conn.ranges, conn.spare_ranges.take().unwrap_or_default());
        if conn.rpos < buffer.len() {
            conn.rbuf.extend_from_slice(&buffer[conn.rpos..]);
        }
        conn.rpos = 0;
        let staging = conn.spare_staging.pop().unwrap_or_default();
        conn.busy = true;
        let generation = self.slots[token].generation;
        let responder = Arc::clone(&self.responder);
        let completions = Arc::clone(&self.completions);
        let write_allocs = Arc::clone(&self.write_allocs);
        self.pool.execute(move || {
            let mut staging = staging;
            let cap_before = staging.capacity();
            for &(start, len) in &ranges {
                let (version, response) = answer_frame(&responder, &buffer[start..start + len]);
                if let Err(e) = encode_response_into(version, &response, &mut staging) {
                    // A response kind the mirrored version cannot express —
                    // unreachable by construction (v2-only responses only
                    // answer v2-only requests), but kept total, exactly as
                    // the blocking path's send fallback.
                    let fallback = Response::Error {
                        epoch: 0,
                        code: ErrorCode::MalformedFrame,
                        message: e.to_string(),
                    };
                    encode_response_into(MIN_PROTOCOL_VERSION, &fallback, &mut staging)
                        .expect("an error frame encodes at every version");
                }
            }
            if staging.capacity() != cap_before {
                write_allocs.fetch_add(1, Ordering::Relaxed);
            }
            let mut buffer = buffer;
            let mut ranges = ranges;
            buffer.clear();
            ranges.clear();
            completions.push(Completion { token, generation, staging, buffer, ranges });
        });
    }

    /// Once every previously accepted frame has been answered, emits the
    /// pending terminal error frame and marks the connection as draining —
    /// the evented mirror of the blocking `send_and_close`.
    fn maybe_queue_fatal(&mut self, token: usize) {
        let conn = self.slots[token].conn.as_mut().expect("live connection");
        if conn.busy || !conn.ranges.is_empty() {
            return;
        }
        let Some(fatal) = conn.fatal.take() else { return };
        let mut staging = conn.spare_staging.pop().unwrap_or_default();
        let cap_before = staging.capacity();
        encode_response_into(MIN_PROTOCOL_VERSION, &fatal, &mut staging)
            .expect("an error frame encodes at every version");
        if staging.capacity() != cap_before {
            self.write_allocs.fetch_add(1, Ordering::Relaxed);
        }
        self.queue_response(token, staging);
        let conn = self.slots[token].conn.as_mut().expect("live connection");
        conn.fatal_queued = true;
    }

    /// Appends an encoded buffer to the write queue, counting container
    /// growth against the buffer-reuse guarantee.
    fn queue_response(&mut self, token: usize, staging: Vec<u8>) {
        let conn = self.slots[token].conn.as_mut().expect("live connection");
        if staging.is_empty() {
            recycle_staging(conn, staging);
            return;
        }
        if conn.outq.len() == conn.outq.capacity() {
            self.write_allocs.fetch_add(1, Ordering::Relaxed);
        }
        conn.outq.push_back(WriteBuf { buf: staging, pos: 0 });
    }

    /// Writes as much of the queue as the socket accepts, vectored over up
    /// to [`MAX_WRITE_VECTORS`] buffers. Returns `false` when the
    /// connection was torn down.
    fn flush_writes(&mut self, token: usize) -> bool {
        let conn = self.slots[token].conn.as_mut().expect("live connection");
        while !conn.outq.is_empty() {
            let mut slices = [IoSlice::new(&[]); MAX_WRITE_VECTORS];
            let mut count = 0;
            for wb in conn.outq.iter().take(MAX_WRITE_VECTORS) {
                slices[count] = IoSlice::new(&wb.buf[wb.pos..]);
                count += 1;
            }
            match conn.stream.write_vectored(&slices[..count]) {
                Ok(0) => {
                    self.close(token);
                    return false;
                }
                Ok(mut written) => {
                    while written > 0 {
                        let front = conn.outq.front_mut().expect("written implies queued");
                        let left = front.buf.len() - front.pos;
                        if written >= left {
                            written -= left;
                            let wb = conn.outq.pop_front().expect("front exists");
                            recycle_staging(conn, wb.buf);
                        } else {
                            front.pos += written;
                            written = 0;
                        }
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(token);
                    return false;
                }
            }
        }
        true
    }

    /// Post-flush transitions: half-close after the final frame, close when
    /// fully quiescent, and refresh poller interest.
    fn maybe_finish(&mut self, token: usize) {
        let conn = self.slots[token].conn.as_mut().expect("live connection");
        if conn.outq.is_empty() && conn.fatal_queued && !conn.write_shut {
            // Final frame flushed: half-close the write side and drain the
            // peer's reads so the kernel delivers it instead of RSTing.
            let _ = conn.stream.shutdown(Shutdown::Write);
            conn.write_shut = true;
            conn.drain_deadline = Some(Instant::now() + DRAIN_GRACE);
            self.draining += 1;
        }
        let done_draining = conn.write_shut && conn.read_closed;
        let idle_eof = conn.read_closed
            && !conn.fatal_queued
            && conn.fatal.is_none()
            && conn.quiescent()
            && conn.ranges.is_empty();
        if done_draining || idle_eof {
            self.close(token);
            return;
        }
        self.update_interest(token);
    }

    /// Syncs the poller registration with what the connection can make
    /// progress on, skipping the syscall when unchanged.
    fn update_interest(&mut self, token: usize) {
        let conn = self.slots[token].conn.as_mut().expect("live connection");
        let readable = !conn.read_closed;
        let writable = !conn.outq.is_empty() && !conn.write_shut;
        if conn.interest != (readable, writable) {
            conn.interest = (readable, writable);
            let event = Event { key: token, readable, writable };
            if self.poller.modify(conn.stream.as_raw_fd(), event).is_err() {
                self.close(token);
            }
        }
    }

    /// Applies every queued batch completion: recycle buffers, queue the
    /// encoded responses, advance the connection. Stale completions (the
    /// slot was vacated or recycled mid-flight) only return their buffers
    /// to the allocator.
    fn apply_completions(&mut self) {
        let mut pending = std::mem::take(&mut self.pending);
        self.completions.drain_into(&mut pending);
        for completion in pending.drain(..) {
            let Some(slot) = self.slots.get_mut(completion.token) else { continue };
            if slot.generation != completion.generation || slot.conn.is_none() {
                continue;
            }
            let conn = slot.conn.as_mut().expect("checked above");
            conn.busy = false;
            conn.spare_rbuf = Some(completion.buffer);
            conn.spare_ranges = Some(completion.ranges);
            self.queue_response(completion.token, completion.staging);
            self.service(completion.token);
        }
        self.pending = pending;
    }

    /// Closes connections whose post-error read drain has outlived its
    /// grace period. Free when nothing is draining.
    fn sweep_deadlines(&mut self) {
        if self.draining == 0 {
            return;
        }
        let now = Instant::now();
        for token in 0..self.slots.len() {
            let expired = self.slots[token]
                .conn
                .as_ref()
                .and_then(|conn| conn.drain_deadline)
                .is_some_and(|deadline| now >= deadline);
            if expired {
                self.close(token);
            }
        }
    }

    /// Vacates a slot: deregister, bump the generation (stale-completion
    /// guard), drop the stream (closing the fd).
    fn close(&mut self, token: usize) {
        if let Some(conn) = self.slots[token].conn.take() {
            if conn.drain_deadline.is_some() {
                self.draining -= 1;
            }
            let _ = self.poller.delete(conn.stream.as_raw_fd());
            self.slots[token].generation += 1;
            self.free.push(token);
        }
    }
}

/// Returns a drained staging buffer to the connection's spare pool (bounded;
/// overflow just frees the buffer).
fn recycle_staging(conn: &mut Conn, mut buf: Vec<u8>) {
    if conn.spare_staging.len() < SPARE_STAGING {
        buf.clear();
        conn.spare_staging.push(buf);
    }
}

/// Marks every complete frame in `rbuf` as a `(start, len)` range in
/// `ranges` — zero-copy; dispatch hands the buffer itself to the worker —
/// enforcing the same guards in the same order as the blocking `read_frame`:
/// oversized announcement, short announcement, then the per-connection
/// request budget — each producing a terminal error sequenced after the
/// accepted frames.
fn parse_frames(conn: &mut Conn, config: &ServerConfig, responder: &Responder) {
    if conn.fatal.is_some() || conn.fatal_queued {
        conn.rbuf.clear();
        conn.rpos = 0;
        return;
    }
    loop {
        let avail = conn.rbuf.len() - conn.rpos;
        if avail < LENGTH_PREFIX_BYTES {
            break;
        }
        let prefix: [u8; LENGTH_PREFIX_BYTES] = conn.rbuf
            [conn.rpos..conn.rpos + LENGTH_PREFIX_BYTES]
            .try_into()
            .expect("slice of prefix length");
        let len = u32::from_le_bytes(prefix) as usize;
        if len > config.max_frame_bytes {
            conn.fatal = Some(responder.oversized_frame_error(len, config.max_frame_bytes));
            break;
        }
        if len < ENVELOPE_BYTES {
            conn.fatal = Some(responder.short_frame_error(len));
            break;
        }
        if avail < LENGTH_PREFIX_BYTES + len {
            break;
        }
        if conn.parsed >= config.max_requests_per_connection {
            conn.fatal = Some(responder.budget_exceeded_error(config.max_requests_per_connection));
            break;
        }
        conn.parsed += 1;
        let start = conn.rpos + LENGTH_PREFIX_BYTES;
        conn.ranges.push((start, len));
        conn.rpos = start + len;
    }
    if conn.fatal.is_some() {
        // Terminal: bytes past the last accepted frame are never parsed.
        conn.rbuf.truncate(conn.rpos);
    }
}
