//! The serving side: a TCP server over a shared keyed [`StoreMap`], in one
//! of two I/O modes behind the same [`HistServer`] API.
//!
//! * [`ServerMode::Blocking`] (the default): one accept thread; each
//!   accepted connection is dispatched onto the crate-shared [`ThreadPool`]
//!   from `hist-serve`, where a handler loops over framed requests with
//!   blocking reads.
//! * [`ServerMode::Evented`]: a single readiness loop (epoll(7) on Linux,
//!   portable poll(2) fallback) multiplexes every connection over
//!   non-blocking sockets with request pipelining and reused write buffers;
//!   request batches still execute on the `hist-serve` [`ThreadPool`]. See
//!   [`crate::evented`].
//!
//! In either mode, reads go through an epoch-stamped snapshot of the
//! addressed key's store (wait-free in practice), batch queries are sharded
//! through a [`QueryExecutor`], and admin writes (`Publish`/`UpdateMerge`)
//! serialize on the addressed store's writer path — exactly the concurrency
//! contract the in-process serving layer already guarantees, now over the
//! wire and per key. Both modes answer every byte stream with byte-identical
//! frames: they share one request→response core ([`Responder`] +
//! `answer_frame`) and one in-place frame encoder.
//!
//! ## Protocol versions
//!
//! The server speaks every version in
//! [`MIN_PROTOCOL_VERSION`](crate::frame::MIN_PROTOCOL_VERSION)`..=`
//! [`PROTOCOL_VERSION`](crate::frame::PROTOCOL_VERSION) and *mirrors* the
//! request's announced version in its answer: a v1 (keyless) request decodes
//! as addressing [`DEFAULT_KEY`] and is answered with a v1 frame, so
//! unmodified v1 clients keep working against a keyed server. Frames whose
//! version the envelope check rejects are answered at the minimum version —
//! the one frame shape every client generation decodes. Mirroring never
//! leaks v2-only error codes into a v1 frame: the encoder downgrades
//! `UnknownKey`/`InvalidKey` to `InvalidQuery` at v1 (see
//! [`ErrorCode::for_version`](crate::proto::ErrorCode::for_version)).
//!
//! Hostile peers are contained at three layers: the frame length prefix is
//! checked against [`ServerConfig::max_frame_bytes`] *before* any allocation,
//! payload parsing is total (typed errors, bounded counts), and each
//! connection carries a request budget. Every rejection is answered with a
//! typed error frame; the connection is kept open while the stream is still
//! framed (the length prefix was honoured — even a bad CRC or magic inside
//! a delimited frame leaves the next frame findable) and answered-then-
//! closed where it is not (a length prefix that is oversized or shorter
//! than an envelope, or an exhausted request budget).

use std::io::{ErrorKind, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hist_core::Interval;
use hist_persist::{decode_synopsis, encode_synopsis, CodecError};
use hist_serve::{MaintenancePolicy, QueryExecutor, Snapshot, StoreMap, ThreadPool, DEFAULT_KEY};

use crate::frame::{
    check_envelope, write_message, ENVELOPE_BYTES, LENGTH_PREFIX_BYTES, MIN_PROTOCOL_VERSION,
};
use crate::proto::{
    decode_request_frame, encode_response_versioned, ErrorCode, Request, Response, StoreWideStats,
    SynopsisStats,
};

/// How a [`HistServer`] drives its sockets. Both modes speak the identical
/// wire protocol through the same request→response core, so clients cannot
/// tell them apart byte-for-byte; the dual-mode integration suites assert
/// exactly that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServerMode {
    /// Thread-per-connection blocking I/O: each connection owns one
    /// [`ServerConfig::connection_threads`] pool worker for its lifetime.
    /// Simple, portable, and the conservative default.
    #[default]
    Blocking,
    /// One evented readiness loop (epoll(7) on Linux, poll(2) fallback)
    /// multiplexing every connection over non-blocking sockets: request
    /// pipelining, vectored writes, reused response buffers. Scales to
    /// thousands of connections; Unix only.
    Evented,
}

/// Tuning knobs of a [`HistServer`]. The defaults serve tests and examples;
/// production deployments mostly care about `max_frame_bytes` (hostile-peer
/// allocation bound) and the two thread counts.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Socket-driving strategy; see [`ServerMode`].
    pub mode: ServerMode,
    /// Evented mode only: force the portable poll(2) backend even where a
    /// better platform backend (epoll) exists. Exists so tests can cover the
    /// fallback path on any host.
    pub force_poll_backend: bool,
    /// Largest frame accepted from a peer; larger announcements are rejected
    /// before any allocation. (Response frames the server *builds* are not
    /// checked against this: a client mirroring the limit should allow the
    /// constant per-frame overhead on top of its largest request.)
    pub max_frame_bytes: usize,
    /// Requests a single connection may issue before the server answers a
    /// typed [`ErrorCode::RequestLimit`] frame and closes it.
    pub max_requests_per_connection: u64,
    /// Workers in the connection pool. Blocking mode: a connection holds its
    /// worker for its whole lifetime (= connections served concurrently), so
    /// size it to the expected number of simultaneous clients. Evented mode:
    /// these workers execute pipelined request batches handed off by the
    /// event loop, so a handful serve thousands of connections.
    pub connection_threads: usize,
    /// Workers in the batch-query executor shared by all connections.
    pub query_threads: usize,
    /// Socket read timeout used to poll the shutdown flag between requests;
    /// bounds how long a graceful shutdown waits for idle connections.
    pub poll_interval: Duration,
    /// Self-tuning maintenance policy applied to the served [`StoreMap`] at
    /// bind time: every key then refits/compacts in the background once its
    /// merge-error budget is spent. `None` (the default) serves merge-only.
    pub maintenance: Option<MaintenancePolicy>,
    /// Workers in the maintenance pool (only spun up when `maintenance` is
    /// set). One is plenty: refits are rare and bounded.
    pub maintenance_threads: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            mode: ServerMode::default(),
            force_poll_backend: false,
            max_frame_bytes: crate::frame::DEFAULT_MAX_FRAME_BYTES,
            max_requests_per_connection: u64::MAX,
            connection_threads: 4,
            query_threads: 4,
            poll_interval: Duration::from_millis(25),
            maintenance: None,
            maintenance_threads: 1,
        }
    }
}

/// A running multi-tenant synopsis server: accept loop + connection pool
/// over a shared keyed [`StoreMap`].
///
/// Dropping the server (or calling [`HistServer::shutdown`]) stops accepting,
/// wakes every idle connection handler and joins all threads — no detached
/// threads outlive the value.
///
/// ```no_run
/// use std::sync::Arc;
/// use hist_net::{HistServer, ServerConfig};
/// use hist_serve::StoreMap;
///
/// let map = Arc::new(StoreMap::new());
/// let server =
///     HistServer::bind("127.0.0.1:0", Arc::clone(&map), ServerConfig::default()).unwrap();
/// println!("serving on {}", server.local_addr());
/// # drop(server);
/// ```
pub struct HistServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    pool: Option<Arc<ThreadPool>>,
    map: Arc<StoreMap>,
    mode: ServerMode,
    write_allocs: Option<Arc<AtomicU64>>,
}

impl std::fmt::Debug for HistServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistServer")
            .field("local_addr", &self.local_addr)
            .field("keys", &self.map.len())
            .field("max_epoch", &self.map.max_epoch())
            .field("shut_down", &self.shutdown.load(Ordering::Acquire))
            .finish()
    }
}

impl HistServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `map` immediately, in the I/O mode `config.mode` selects.
    pub fn bind(
        addr: impl ToSocketAddrs,
        map: Arc<StoreMap>,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        if let Some(policy) = &config.maintenance {
            map.enable_maintenance(policy.clone(), config.maintenance_threads)
                .map_err(|e| std::io::Error::new(ErrorKind::InvalidInput, e.to_string()))?;
        }
        let shutdown = Arc::new(AtomicBool::new(false));
        let pool = Arc::new(ThreadPool::new(config.connection_threads));
        let executor = Arc::new(QueryExecutor::new(config.query_threads));
        let responder = Arc::new(Responder { map: Arc::clone(&map), executor });
        let mode = config.mode;
        let (accept, write_allocs) = match mode {
            ServerMode::Blocking => {
                (Self::spawn_blocking(listener, responder, &shutdown, &pool, config)?, None)
            }
            #[cfg(unix)]
            ServerMode::Evented => {
                let allocs = Arc::new(AtomicU64::new(0));
                let handle = crate::evented::spawn(
                    listener,
                    responder,
                    Arc::clone(&shutdown),
                    Arc::clone(&pool),
                    config,
                    Arc::clone(&allocs),
                )?;
                (handle, Some(allocs))
            }
            #[cfg(not(unix))]
            ServerMode::Evented => {
                return Err(std::io::Error::new(
                    ErrorKind::Unsupported,
                    "ServerMode::Evented requires a Unix host; use ServerMode::Blocking",
                ));
            }
        };
        Ok(Self {
            local_addr,
            shutdown,
            accept: Some(accept),
            pool: Some(pool),
            map,
            mode,
            write_allocs,
        })
    }

    /// Spawns the blocking accept loop: every accepted connection takes a
    /// pool worker for its lifetime.
    fn spawn_blocking(
        listener: TcpListener,
        responder: Arc<Responder>,
        shutdown: &Arc<AtomicBool>,
        pool: &Arc<ThreadPool>,
        config: ServerConfig,
    ) -> std::io::Result<JoinHandle<()>> {
        let shutdown = Arc::clone(shutdown);
        let pool = Arc::clone(pool);
        std::thread::Builder::new().name("hist-net-accept".into()).spawn(move || {
            for stream in listener.incoming() {
                if shutdown.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = stream else {
                    // Persistent accept errors (EMFILE under fd
                    // exhaustion) return immediately: back off instead
                    // of hot-looping exactly when the host is starved.
                    std::thread::sleep(Duration::from_millis(10));
                    continue;
                };
                let shutdown = Arc::clone(&shutdown);
                let responder = Arc::clone(&responder);
                let config = config.clone();
                pool.execute(move || {
                    Connection { stream, responder, config, shutdown }.run();
                });
            }
        })
    }

    /// The address the server is listening on (resolves ephemeral ports).
    #[inline]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The keyed store map this server serves; publish to it directly to
    /// seed the server from the owning process.
    #[inline]
    pub fn store_map(&self) -> &Arc<StoreMap> {
        &self.map
    }

    /// The I/O mode this server was bound in.
    #[inline]
    pub fn mode(&self) -> ServerMode {
        self.mode
    }

    /// Evented mode: how many times the response write path has had to
    /// allocate (grow a staging buffer, mint a fresh one because the reuse
    /// pool ran dry, or grow a queue container) since bind. Flat across a
    /// warmed-up steady state — the buffer-reuse guarantee the evented
    /// design makes — and asserted flat by the `net_evented` suite. `None`
    /// in blocking mode, which allocates one message per response by design.
    #[inline]
    pub fn write_path_allocations(&self) -> Option<u64> {
        self.write_allocs.as_ref().map(|counter| counter.load(Ordering::Acquire))
    }

    /// Graceful shutdown: stop accepting, let in-flight requests finish,
    /// wake idle connection handlers (they poll the shutdown flag on the
    /// [`ServerConfig::poll_interval`] read timeout) and join every thread.
    /// Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        if self.accept.is_none() && self.pool.is_none() {
            return;
        }
        self.shutdown.store(true, Ordering::Release);
        // Wake the blocking accept call with a throwaway connection. A
        // wildcard bind address (0.0.0.0 / ::) is not itself connectable
        // everywhere, so the waker targets loopback on the bound port.
        let mut wake_addr = self.local_addr;
        if wake_addr.ip().is_unspecified() {
            wake_addr.set_ip(match wake_addr {
                SocketAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
                SocketAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
            });
        }
        let _ = TcpStream::connect_timeout(&wake_addr, Duration::from_secs(1));
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // The accept thread has exited, so this is the last Arc: dropping it
        // joins the pool workers, whose handlers exit on the shutdown flag.
        self.pool.take();
    }
}

impl Drop for HistServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Outcome of one incremental read attempt.
enum Fill {
    /// The buffer is full.
    Done,
    /// The peer closed the stream.
    Eof,
    /// The read timed out (poll the shutdown flag and retry).
    Timeout,
    /// The socket failed.
    Failed,
}

/// One accepted connection, running on a pool worker (blocking mode).
struct Connection {
    stream: TcpStream,
    responder: Arc<Responder>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
}

impl Connection {
    fn run(mut self) {
        let _ = self.stream.set_read_timeout(Some(self.config.poll_interval));
        let _ = self.stream.set_nodelay(true);
        let mut served = 0u64;
        loop {
            let frame = match self.read_frame() {
                Ok(Some(frame)) => frame,
                // Clean close, peer gone, or shutdown: nothing left to say.
                Ok(None) => return,
                // Framing errors desynchronize the stream: answer with a
                // typed error frame, then close. The version is unknowable
                // here, so the answer goes out at the minimum version.
                Err(response) => return self.send_and_close(MIN_PROTOCOL_VERSION, &response),
            };
            if served >= self.config.max_requests_per_connection {
                let response =
                    self.responder.budget_exceeded_error(self.config.max_requests_per_connection);
                return self.send_and_close(MIN_PROTOCOL_VERSION, &response);
            }
            served += 1;
            let (version, response) = answer_frame(&self.responder, &frame);
            if !self.send(version, &response) {
                return;
            }
        }
    }

    /// Reads one length-prefixed frame, polling the shutdown flag on read
    /// timeouts. `Ok(None)` means the connection is over (clean EOF, socket
    /// failure, or shutdown); `Err(response)` carries the typed error frame
    /// to send before closing (frame too large / truncated announcement).
    fn read_frame(&mut self) -> Result<Option<Vec<u8>>, Response> {
        let mut prefix = [0u8; LENGTH_PREFIX_BYTES];
        let mut got = 0usize;
        loop {
            match self.fill(&mut prefix, &mut got) {
                Fill::Done => break,
                // EOF before any prefix byte is a clean close; EOF inside
                // the prefix means the peer gave up mid-message — nobody is
                // left to read an error frame either way.
                Fill::Eof | Fill::Failed => return Ok(None),
                Fill::Timeout => {
                    if self.shutdown.load(Ordering::Acquire) {
                        return Ok(None);
                    }
                }
            }
        }
        let len = u32::from_le_bytes(prefix) as usize;
        if len > self.config.max_frame_bytes {
            return Err(self.responder.oversized_frame_error(len, self.config.max_frame_bytes));
        }
        if len < ENVELOPE_BYTES {
            return Err(self.responder.short_frame_error(len));
        }
        let mut frame = vec![0u8; len];
        let mut filled = 0usize;
        loop {
            match self.fill(&mut frame, &mut filled) {
                Fill::Done => return Ok(Some(frame)),
                Fill::Eof | Fill::Failed => return Ok(None),
                Fill::Timeout => {
                    if self.shutdown.load(Ordering::Acquire) {
                        return Ok(None);
                    }
                }
            }
        }
    }

    /// Advances `filled` toward `buf.len()`, mapping socket conditions to
    /// [`Fill`] outcomes.
    fn fill(&mut self, buf: &mut [u8], filled: &mut usize) -> Fill {
        while *filled < buf.len() {
            match self.stream.read(&mut buf[*filled..]) {
                Ok(0) => return Fill::Eof,
                Ok(n) => *filled += n,
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    return Fill::Timeout
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return Fill::Failed,
            }
        }
        Fill::Done
    }

    /// Writes a response at the version the request announced (mirroring);
    /// `false` means the peer is gone. A response kind the mirrored version
    /// cannot express falls back to a malformed-frame error at that version
    /// — unreachable by construction, since v2-only responses only answer
    /// v2-only requests, but the fallback keeps the handler total.
    fn send(&mut self, version: u16, response: &Response) -> bool {
        let message = encode_response_versioned(version, response).unwrap_or_else(|e| {
            let fallback = Response::Error {
                epoch: 0,
                code: ErrorCode::MalformedFrame,
                message: e.to_string(),
            };
            encode_response_versioned(MIN_PROTOCOL_VERSION, &fallback)
                .expect("an error frame encodes at every version")
        });
        write_message(&mut self.stream, &message).is_ok()
    }

    /// Sends a final response, then closes *gracefully*: half-close the
    /// write side and drain whatever the peer already pipelined, so the
    /// kernel delivers the last frame instead of clobbering it with an RST
    /// (closing a socket with unread bytes resets the connection and
    /// discards data the peer has not consumed yet).
    fn send_and_close(mut self, version: u16, response: &Response) {
        let _ = self.send(version, response);
        let _ = self.stream.shutdown(Shutdown::Write);
        let deadline = Instant::now() + Duration::from_secs(2);
        let mut scratch = [0u8; 4096];
        while Instant::now() < deadline {
            match self.stream.read(&mut scratch) {
                Ok(0) => return,
                Ok(_) => continue,
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }
}

/// The request→response core both server modes share: a decoded request in,
/// a typed response out, over the shared [`StoreMap`] and [`QueryExecutor`].
/// Owning this logic in one place is what makes the two modes byte-identical
/// on every input the dual-mode suites replay.
pub(crate) struct Responder {
    pub(crate) map: Arc<StoreMap>,
    pub(crate) executor: Arc<QueryExecutor>,
}

/// Answers one complete frame (the bytes after the length prefix): envelope
/// check, request decode, dispatch. Returns the version to mirror on the
/// answer frame alongside the response. An invalid envelope makes the
/// announced version untrusted (it may be the very thing that was rejected),
/// so those answers go out at the minimum version — the one frame shape
/// every client generation decodes; the stream itself is still framed (the
/// length prefix was honoured), so the connection continues either way.
pub(crate) fn answer_frame(responder: &Responder, frame: &[u8]) -> (u16, Response) {
    match check_envelope(frame) {
        Ok((version, op, payload)) => match decode_request_frame(version, op, payload) {
            Ok(request) => (version, responder.respond(request)),
            Err(e) => (version, responder.error(decode_error_code(&e), e.to_string())),
        },
        Err(e) => (MIN_PROTOCOL_VERSION, responder.error(decode_error_code(&e), e.to_string())),
    }
}

impl Responder {
    /// An error frame with no key in scope, stamped with the store-wide
    /// maximum epoch.
    fn error(&self, code: ErrorCode, message: String) -> Response {
        Response::Error { epoch: self.map.max_epoch(), code, message }
    }

    /// An error frame about a specific key, stamped with that key's epoch.
    fn keyed_error(&self, key: &str, code: ErrorCode, message: String) -> Response {
        Response::Error { epoch: self.map.epoch(key), code, message }
    }

    /// The typed rejection of the request after the per-connection budget.
    pub(crate) fn budget_exceeded_error(&self, budget: u64) -> Response {
        self.error(
            ErrorCode::RequestLimit,
            format!("connection exceeded its {budget} request budget"),
        )
    }

    /// The typed rejection of a length prefix above the frame limit.
    pub(crate) fn oversized_frame_error(&self, len: usize, limit: usize) -> Response {
        self.error(
            ErrorCode::FrameTooLarge,
            format!("announced frame of {len} byte(s) exceeds the {limit}-byte limit"),
        )
    }

    /// The typed rejection of a length prefix shorter than an envelope.
    pub(crate) fn short_frame_error(&self, len: usize) -> Response {
        self.error(
            ErrorCode::MalformedFrame,
            format!("announced frame of {len} byte(s) is shorter than an envelope"),
        )
    }

    /// The snapshot queries against `key` answer from, or the typed error:
    /// an absent non-default key is [`ErrorCode::UnknownKey`]; a present but
    /// never-published key (and the always-implied default key) is
    /// [`ErrorCode::EmptyStore`].
    fn snapshot(&self, key: &str) -> Result<Snapshot, Response> {
        match self.map.snapshot(key) {
            Some(snapshot) => Ok(snapshot),
            None if key == DEFAULT_KEY || self.map.contains_key(key) => Err(self.keyed_error(
                key,
                ErrorCode::EmptyStore,
                format!("no synopsis has been published at key {key:?} yet"),
            )),
            None => Err(self.keyed_error(
                key,
                ErrorCode::UnknownKey,
                format!("key {key:?} is not present in the store map"),
            )),
        }
    }

    /// Maps one decoded request to its response. Total: every failure is a
    /// typed error frame, never a panic.
    fn respond(&self, request: Request) -> Response {
        match request {
            Request::CdfBatch { key, xs } => match self.snapshot(&key) {
                Err(e) => e,
                Ok(snapshot) => {
                    let mut indices = Vec::with_capacity(xs.len());
                    for &x in &xs {
                        match usize::try_from(x) {
                            Ok(index) => indices.push(index),
                            Err(_) => {
                                return self.keyed_error(
                                    &key,
                                    ErrorCode::InvalidQuery,
                                    format!("index {x} does not fit this platform's usize"),
                                )
                            }
                        }
                    }
                    match self.executor.cdf_batch(snapshot.synopsis(), &indices) {
                        Ok(values) => Response::CdfBatch { epoch: snapshot.epoch(), values },
                        Err(e) => self.keyed_error(&key, ErrorCode::InvalidQuery, e.to_string()),
                    }
                }
            },
            Request::QuantileBatch { key, ps } => match self.snapshot(&key) {
                Err(e) => e,
                Ok(snapshot) => match self.executor.quantile_batch(snapshot.synopsis(), &ps) {
                    Ok(indices) => Response::QuantileBatch {
                        epoch: snapshot.epoch(),
                        indices: indices.into_iter().map(|i| i as u64).collect(),
                    },
                    Err(e) => self.keyed_error(&key, ErrorCode::InvalidQuery, e.to_string()),
                },
            },
            Request::MassBatch { key, ranges: raw } => match self.snapshot(&key) {
                Err(e) => e,
                Ok(snapshot) => {
                    let mut ranges = Vec::with_capacity(raw.len());
                    for &(start, end) in &raw {
                        let interval = usize::try_from(start)
                            .ok()
                            .zip(usize::try_from(end).ok())
                            .and_then(|(s, e)| Interval::new(s, e).ok());
                        match interval {
                            Some(interval) => ranges.push(interval),
                            None => {
                                return self.keyed_error(
                                    &key,
                                    ErrorCode::InvalidQuery,
                                    format!("[{start}, {end}] is not a valid index range"),
                                )
                            }
                        }
                    }
                    match self.executor.mass_batch(snapshot.synopsis(), &ranges) {
                        Ok(masses) => Response::MassBatch { epoch: snapshot.epoch(), masses },
                        Err(e) => self.keyed_error(&key, ErrorCode::InvalidQuery, e.to_string()),
                    }
                }
            },
            Request::Stats { key } => {
                // Total even for absent keys: statistics are observability,
                // so an unknown key reports epoch 0 / no synopsis rather
                // than erroring.
                let store = self.map.store(&key);
                let maintenance = store.as_ref().map(|s| s.maintenance_stats()).unwrap_or_default();
                let snapshot = store.and_then(|s| s.snapshot());
                Response::Stats {
                    epoch: snapshot.as_ref().map_or_else(|| self.map.epoch(&key), |s| s.epoch()),
                    synopsis: snapshot.map(|s| SynopsisStats {
                        domain: s.domain() as u64,
                        pieces: s.num_pieces() as u64,
                        target_k: s.target_k() as u64,
                        total_mass: s.total_mass(),
                        estimator: s.estimator().to_string(),
                        merges: maintenance.merges,
                        refits: maintenance.refits,
                        merge_error: maintenance.accumulated_error,
                    }),
                }
            }
            Request::StoreStats => {
                let stats = self.map.store_stats();
                Response::StoreStats {
                    epoch: stats.max_epoch,
                    stats: StoreWideStats {
                        keys: stats.keys,
                        served: stats.served,
                        total_pieces: stats.total_pieces,
                        min_epoch: stats.min_epoch,
                        max_epoch: stats.max_epoch,
                        merges: stats.merges,
                        refits: stats.refits,
                        merged_mass: stats.merged_mass,
                        merge_error: stats.merge_error,
                    },
                }
            }
            Request::ListKeys => {
                Response::KeyList { epoch: self.map.max_epoch(), keys: self.map.keys() }
            }
            Request::MergedView { budget } => {
                let Ok(budget) = usize::try_from(budget) else {
                    return self.error(
                        ErrorCode::InvalidQuery,
                        format!("budget {budget} does not fit this platform's usize"),
                    );
                };
                match self.map.merged_view(budget) {
                    Ok(Some(view)) => Response::MergedView {
                        epoch: view.epoch,
                        keys: view.keys,
                        synopsis: encode_synopsis(&view.synopsis),
                    },
                    Ok(None) => self.error(
                        ErrorCode::EmptyStore,
                        "no key serves a synopsis to merge yet".into(),
                    ),
                    Err(e) => self.error(ErrorCode::InvalidQuery, e.to_string()),
                }
            }
            Request::Publish { key, synopsis: blob } => match decode_synopsis(&blob) {
                Ok(synopsis) => match self.map.publish(&key, synopsis) {
                    Ok(epoch) => Response::Updated { epoch },
                    Err(e) => self.keyed_error(&key, store_error_code(&e), e.to_string()),
                },
                Err(e) => self.keyed_error(&key, ErrorCode::InvalidSynopsis, e.to_string()),
            },
            Request::UpdateMerge { key, budget, synopsis } => {
                let Ok(budget) = usize::try_from(budget) else {
                    return self.keyed_error(
                        &key,
                        ErrorCode::InvalidSynopsis,
                        format!("budget {budget} does not fit this platform's usize"),
                    );
                };
                match decode_synopsis(&synopsis) {
                    Ok(chunk) => match self.map.update_merge(&key, &chunk, budget) {
                        Ok(epoch) => Response::Updated { epoch },
                        Err(e) => self.keyed_error(&key, store_error_code(&e), e.to_string()),
                    },
                    Err(e) => self.keyed_error(&key, ErrorCode::InvalidSynopsis, e.to_string()),
                }
            }
            Request::DropKey { key } => {
                // Capture the epoch before the drop so the answer reports
                // the evicted store's last epoch, not the post-drop zero.
                let epoch = self.map.epoch(&key);
                let existed = self.map.drop_key(&key);
                Response::Dropped { epoch, existed }
            }
        }
    }
}

/// The typed error code a request-decode failure maps to.
fn decode_error_code(e: &CodecError) -> ErrorCode {
    match e {
        CodecError::UnsupportedVersion { .. } => ErrorCode::UnsupportedVersion,
        CodecError::InvalidTag { what: "request op", .. } => ErrorCode::UnknownOp,
        CodecError::InvalidKey { .. } => ErrorCode::InvalidKey,
        _ => ErrorCode::MalformedFrame,
    }
}

/// The typed error code a [`StoreMap`] write failure maps to: key-rule
/// violations are [`ErrorCode::InvalidKey`], everything else (merge/budget
/// failures) is about the shipped synopsis.
fn store_error_code(e: &hist_core::Error) -> ErrorCode {
    match e {
        hist_core::Error::InvalidParameter { name: "key", .. } => ErrorCode::InvalidKey,
        _ => ErrorCode::InvalidSynopsis,
    }
}
