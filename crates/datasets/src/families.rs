//! Additional synthetic signal families used by the examples, the property
//! tests and the ablation experiments: Zipf frequency columns, discretized
//! Gaussian mixtures, and step-plus-spike signals.

use crate::noise::GaussianNoise;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Zipf-distributed frequency column: `value(i) ∝ 1 / rank(i)^exponent` where
/// the ranks are assigned to positions by a seeded shuffle. This mimics a
/// database column of item frequencies (the motivating workload of the paper's
/// introduction) — a few heavy hitters scattered over a large domain.
pub fn zipf_frequencies(n: usize, exponent: f64, total_count: f64, seed: u64) -> Vec<f64> {
    let n = n.max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    // Assign ranks 1..=n to positions via a Fisher–Yates shuffle.
    let mut positions: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        positions.swap(i, j);
    }
    let weights: Vec<f64> = (1..=n).map(|rank| 1.0 / (rank as f64).powf(exponent)).collect();
    let norm: f64 = weights.iter().sum();
    let mut values = vec![0.0; n];
    for (rank_idx, &pos) in positions.iter().enumerate() {
        values[pos] = total_count * weights[rank_idx] / norm;
    }
    values
}

/// A discretized mixture of Gaussians over `[0, n)`: each component contributes
/// a bell curve of the given weight, centre (as a fraction of `n`) and width
/// (as a fraction of `n`). Useful as a smooth multi-modal test distribution.
pub fn gaussian_mixture(n: usize, components: &[(f64, f64, f64)]) -> Vec<f64> {
    let n = n.max(1);
    let mut values = vec![0.0; n];
    for &(weight, centre, width) in components {
        let mu = centre * n as f64;
        let sigma = (width * n as f64).max(1e-9);
        for (i, v) in values.iter_mut().enumerate() {
            let z = (i as f64 - mu) / sigma;
            *v += weight * (-0.5 * z * z).exp() / (sigma * (2.0 * std::f64::consts::PI).sqrt());
        }
    }
    values
}

/// A piecewise-constant signal with additive Gaussian noise and a few isolated
/// spikes — the adversarial-ish case for merging algorithms (spikes must not be
/// averaged away when the piece budget allows isolating them).
pub fn steps_with_spikes(
    n: usize,
    steps: usize,
    spikes: usize,
    noise_std: f64,
    seed: u64,
) -> Vec<f64> {
    let n = n.max(1);
    let steps = steps.clamp(1, n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut noise = GaussianNoise::new();
    let levels: Vec<f64> = (0..steps).map(|_| rng.gen_range(0.0..8.0)).collect();
    let mut values: Vec<f64> = (0..n)
        .map(|i| {
            let piece = (i * steps / n).min(steps - 1);
            levels[piece] + noise_std * noise.standard(&mut rng)
        })
        .collect();
    for _ in 0..spikes {
        let pos = rng.gen_range(0..n);
        values[pos] += rng.gen_range(20.0..40.0);
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_mass_is_concentrated_on_few_items() {
        let values = zipf_frequencies(10_000, 1.1, 1_000_000.0, 3);
        let total: f64 = values.iter().sum();
        assert!((total - 1_000_000.0).abs() < 1e-3);
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let top_100: f64 = sorted.iter().take(100).sum();
        assert!(top_100 / total > 0.5, "top 100 items should hold most of the mass");
        assert_eq!(values.len(), 10_000);
    }

    #[test]
    fn zipf_is_deterministic_per_seed() {
        assert_eq!(zipf_frequencies(100, 1.0, 10.0, 5), zipf_frequencies(100, 1.0, 10.0, 5));
        assert_ne!(zipf_frequencies(100, 1.0, 10.0, 5), zipf_frequencies(100, 1.0, 10.0, 6));
    }

    #[test]
    fn gaussian_mixture_has_the_requested_modes() {
        let values = gaussian_mixture(1_000, &[(1.0, 0.25, 0.05), (2.0, 0.75, 0.05)]);
        assert_eq!(values.len(), 1_000);
        // The second mode is twice as heavy as the first.
        let peak1 = values[200..300].iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let peak2 = values[700..800].iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!((peak2 / peak1 - 2.0).abs() < 0.1, "peak ratio {}", peak2 / peak1);
        // The valley between the modes is much lower than either peak.
        let valley = values[480..520].iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(valley < 0.2 * peak1);
    }

    #[test]
    fn steps_with_spikes_contains_both_features() {
        let values = steps_with_spikes(2_000, 5, 3, 0.1, 11);
        assert_eq!(values.len(), 2_000);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max > 15.0, "spikes should stick out, max {max}");
        // Remove the spikes: the rest stays in the step range.
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p95 = sorted[(0.95 * 2_000.0) as usize];
        assert!(p95 < 10.0, "the bulk of the signal stays at step level, p95 {p95}");
    }
}
