//! The `dow` data set: a Dow-Jones-like daily-closing time series.
//!
//! The paper's third data set is the real DJIA daily closing series
//! (`n = 16384`, values ranging from ≈ 55 to ≈ 400 in Figure 1). The raw series
//! is not redistributable, so we substitute a seeded geometric random walk with
//! drift and volatility calibrated to reproduce the plotted range and the
//! qualitative character of the series: smooth-but-rough, long trends, no
//! natural piecewise-constant structure. This preserves exactly the properties
//! the experiments exercise (see `DESIGN.md`, substitution table).

use crate::noise::GaussianNoise;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parameters of the geometric-random-walk generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DowDatasetParams {
    /// Series length `n`.
    pub n: usize,
    /// Starting level of the series.
    pub start: f64,
    /// Level the series is steered towards at the end (a geometric Brownian
    /// *bridge* is used so the plotted range matches Figure 1 for every seed).
    pub end: f64,
    /// Per-step volatility of the log-price.
    pub volatility: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DowDatasetParams {
    fn default() -> Self {
        // Calibrated to Figure 1: the DJIA series rises from ≈ 55 to ≈ 400 over
        // 16384 trading days with everyday volatility around 1%.
        Self { n: 16_384, start: 55.0, end: 400.0, volatility: 0.01, seed: 0xD031_1355 }
    }
}

/// Generates a geometric Brownian bridge: the log-price performs a random walk
/// with per-step volatility `volatility`, linearly corrected so the series
/// starts at `start` and ends at `end` exactly. All intermediate roughness and
/// trend structure of a geometric random walk is preserved.
pub fn geometric_random_walk(params: &DowDatasetParams) -> Vec<f64> {
    let DowDatasetParams { n, start, end, volatility, seed } = *params;
    let n = n.max(1);
    let start = start.max(f64::MIN_POSITIVE);
    let end = end.max(f64::MIN_POSITIVE);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut noise = GaussianNoise::new();

    // Pure random walk in log space starting at ln(start).
    let mut log_walk = Vec::with_capacity(n);
    let mut log_level = start.ln();
    for _ in 0..n {
        log_walk.push(log_level);
        log_level += volatility * noise.standard(&mut rng);
    }
    if n == 1 {
        return vec![start];
    }
    // Bridge correction: steer the endpoint to ln(end) by adding a linear ramp.
    let realized_end = *log_walk.last().expect("n >= 1");
    let correction = end.ln() - realized_end;
    log_walk
        .iter()
        .enumerate()
        .map(|(t, &lw)| (lw + correction * t as f64 / (n - 1) as f64).exp())
        .collect()
}

/// The `dow` data set (`n = 16384`) with its default calibration.
pub fn dow_dataset() -> Vec<f64> {
    geometric_random_walk(&DowDatasetParams::default())
}

/// A shorter variant of the `dow` series (same calibration and seed, bridged
/// over `n` steps instead of 16384), useful for quick experiments and tests.
pub fn dow_dataset_with_length(n: usize) -> Vec<f64> {
    geometric_random_walk(&DowDatasetParams { n, ..Default::default() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_series_matches_the_paper_scale() {
        let series = dow_dataset();
        assert_eq!(series.len(), 16_384);
        assert!((series[0] - 55.0).abs() < 1e-9);
        let max = series.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = series.iter().cloned().fold(f64::INFINITY, f64::min);
        let last = *series.last().unwrap();
        assert!(min > 5.0, "series dipped to {min}");
        assert!(max < 2_000.0, "series exploded to {max}");
        assert!((last - 400.0).abs() < 1e-6, "the bridge pins the endpoint, got {last}");
    }

    #[test]
    fn series_is_rough_but_positively_correlated() {
        let series = dow_dataset_with_length(4_096);
        // Daily relative moves are small...
        let max_rel_move =
            series.windows(2).map(|w| (w[1] / w[0] - 1.0).abs()).fold(0.0f64, f64::max);
        assert!(max_rel_move < 0.1, "max daily move {max_rel_move}");
        // ...but the series is not piecewise constant anywhere.
        assert!(series.windows(2).all(|w| (w[1] - w[0]).abs() > 0.0));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = dow_dataset_with_length(500);
        let b = dow_dataset_with_length(500);
        assert_eq!(a, b);
        let other_seed =
            geometric_random_walk(&DowDatasetParams { seed: 7, n: 500, ..Default::default() });
        assert_ne!(a, other_seed);
        // Every bridged series is pinned at both ends regardless of length.
        assert!((a[0] - 55.0).abs() < 1e-9);
        assert!((a.last().unwrap() - 400.0).abs() < 1e-6);
    }

    #[test]
    fn all_values_are_positive_and_finite() {
        let series = dow_dataset_with_length(10_000);
        assert!(series.iter().all(|v| v.is_finite() && *v > 0.0));
    }
}
