//! # hist-datasets
//!
//! Workload generators reproducing the evaluation data sets of the PODS 2015
//! histogram paper (Figure 1 / Section 5) plus extra synthetic families used by
//! the examples and property tests:
//!
//! * [`hist_dataset`] — noisy 10-piece histogram, `n = 1000`;
//! * [`poly_dataset`] — noisy degree-5 polynomial, `n = 4000`;
//! * [`dow_dataset`] — a Dow-Jones-like geometric random walk, `n = 16384`
//!   (substitute for the non-redistributable DJIA series; see `DESIGN.md`);
//! * [`normalize`] — normalization and subsampling into the `hist'`, `poly'`
//!   and `dow'` learning distributions of Section 5.2;
//! * [`families`] — Zipf frequency columns, Gaussian mixtures, steps with
//!   spikes.
//!
//! All generators are deterministic given their seed so that experiments and
//! tests are reproducible.

pub mod families;
pub mod noise;
pub mod normalize;
pub mod synthetic;
pub mod timeseries;

pub use families::{gaussian_mixture, steps_with_spikes, zipf_frequencies};
pub use noise::{add_gaussian_noise, GaussianNoise};
pub use normalize::{subsample, subsample_to_distribution, to_distribution};
pub use synthetic::{
    hist_dataset, hist_dataset_with, poly_dataset, poly_dataset_with, HistDatasetParams,
    PolyDatasetParams,
};
pub use timeseries::{
    dow_dataset, dow_dataset_with_length, geometric_random_walk, DowDatasetParams,
};

/// The three offline data sets of Figure 1 in one call:
/// `(hist, poly, dow)` with their default parameters.
pub fn figure1_datasets() -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    (hist_dataset(), poly_dataset(), dow_dataset())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_bundle_has_the_paper_sizes() {
        let (hist, poly, dow) = figure1_datasets();
        assert_eq!(hist.len(), 1_000);
        assert_eq!(poly.len(), 4_000);
        assert_eq!(dow.len(), 16_384);
    }
}
