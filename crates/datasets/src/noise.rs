//! Gaussian noise via the Box–Muller transform.
//!
//! The synthetic data sets of the paper's Figure 1 are clean signals (a
//! 10-piece histogram, a degree-5 polynomial) contaminated with Gaussian
//! noise. `rand` ships only uniform primitives in our offline set, so the
//! normal variates are generated with the classic Box–Muller transform.

use rand::Rng;

/// A Box–Muller Gaussian sampler that caches the second variate of each pair.
#[derive(Debug, Clone, Default)]
pub struct GaussianNoise {
    spare: Option<f64>,
}

impl GaussianNoise {
    /// Creates a fresh sampler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Draws one standard-normal variate.
    pub fn standard<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Box–Muller: two uniforms → two independent standard normals.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen();
        let radius = (-2.0 * u1.ln()).sqrt();
        let angle = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(radius * angle.sin());
        radius * angle.cos()
    }

    /// Draws one normal variate with the given mean and standard deviation.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard(rng)
    }
}

/// Adds i.i.d. `N(0, σ²)` noise to every entry of a signal.
pub fn add_gaussian_noise<R: Rng + ?Sized>(signal: &mut [f64], std_dev: f64, rng: &mut R) {
    let mut noise = GaussianNoise::new();
    for v in signal {
        *v += noise.sample(rng, 0.0, std_dev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_are_approximately_correct() {
        let mut rng = StdRng::seed_from_u64(123);
        let mut noise = GaussianNoise::new();
        let samples: Vec<f64> = (0..200_000).map(|_| noise.sample(&mut rng, 2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
            / (samples.len() - 1) as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 9.0).abs() < 0.2, "variance {var}");
    }

    #[test]
    fn tails_behave_like_a_gaussian() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut noise = GaussianNoise::new();
        let n = 100_000;
        let beyond_two_sigma =
            (0..n).filter(|_| noise.standard(&mut rng).abs() > 2.0).count() as f64 / n as f64;
        // P(|Z| > 2) ≈ 4.55%.
        assert!((beyond_two_sigma - 0.0455).abs() < 0.01, "tail mass {beyond_two_sigma}");
    }

    #[test]
    fn add_noise_preserves_length_and_changes_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut signal = vec![5.0; 100];
        add_gaussian_noise(&mut signal, 0.5, &mut rng);
        assert_eq!(signal.len(), 100);
        assert!(signal.iter().any(|&v| (v - 5.0).abs() > 1e-6));
        // Zero noise is a no-op.
        let mut clean = vec![1.0, 2.0];
        add_gaussian_noise(&mut clean, 0.0, &mut rng);
        assert_eq!(clean, vec![1.0, 2.0]);
    }
}
