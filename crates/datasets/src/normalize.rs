//! Turning raw signals into probability distributions and reduced-support
//! variants: the `hist'`, `poly'` and `dow'` data sets of the paper's learning
//! experiments (Section 5.2) are the Figure 1 signals, subsampled to a support
//! of roughly 1000 and normalized to total mass 1.

use hist_core::{Distribution, Error, Result};

/// Normalizes a non-negative signal into a probability distribution
/// (`value(i) / Σ_j value(j)`). Negative entries are clamped to zero first
/// (the Figure 1 signals are non-negative up to noise).
pub fn to_distribution(values: &[f64]) -> Result<Distribution> {
    if values.is_empty() {
        return Err(Error::EmptyDomain);
    }
    let clamped: Vec<f64> = values.iter().map(|&v| v.max(0.0)).collect();
    Distribution::from_weights(&clamped)
}

/// Keeps every `factor`-th sample of the signal (uniformly spaced subsampling),
/// as used to build the `poly'` (factor 4) and `dow'` (factor 16) data sets.
pub fn subsample(values: &[f64], factor: usize) -> Result<Vec<f64>> {
    if values.is_empty() {
        return Err(Error::EmptyDomain);
    }
    if factor == 0 {
        return Err(Error::InvalidParameter {
            name: "factor",
            reason: "the subsampling factor must be at least 1".into(),
        });
    }
    Ok(values.iter().step_by(factor).copied().collect())
}

/// Subsamples by `factor` and normalizes in one step — the exact preprocessing
/// of Section 5.2.
pub fn subsample_to_distribution(values: &[f64], factor: usize) -> Result<Distribution> {
    to_distribution(&subsample(values, factor)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{hist_dataset, poly_dataset};
    use crate::timeseries::dow_dataset;
    use hist_core::DiscreteFunction;

    #[test]
    fn normalization_produces_a_valid_distribution() {
        let d = to_distribution(&[1.0, 3.0, 0.0, -0.5, 4.0]).unwrap();
        assert_eq!(d.domain(), 5);
        assert!((d.total_mass() - 1.0).abs() < 1e-12);
        assert_eq!(d.prob(3), 0.0, "negative entries are clamped");
        assert!((d.prob(1) - 3.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn subsampling_keeps_every_kth_value() {
        let values = vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        assert_eq!(subsample(&values, 2).unwrap(), vec![0.0, 2.0, 4.0, 6.0]);
        assert_eq!(subsample(&values, 3).unwrap(), vec![0.0, 3.0, 6.0]);
        assert_eq!(subsample(&values, 1).unwrap(), values);
        assert!(subsample(&values, 0).is_err());
        assert!(subsample(&[], 2).is_err());
    }

    #[test]
    fn paper_learning_datasets_have_support_around_1000() {
        // hist' : n = 1000 (no subsampling), poly' : 4000 / 4, dow' : 16384 / 16.
        let hist_prime = to_distribution(&hist_dataset()).unwrap();
        assert_eq!(hist_prime.domain(), 1_000);

        let poly_prime = subsample_to_distribution(&poly_dataset(), 4).unwrap();
        assert_eq!(poly_prime.domain(), 1_000);

        let dow_prime = subsample_to_distribution(&dow_dataset(), 16).unwrap();
        assert_eq!(dow_prime.domain(), 1_024);

        for d in [&hist_prime, &poly_prime, &dow_prime] {
            assert!((d.total_mass() - 1.0).abs() < 1e-9);
            assert!(d.pmf().iter().all(|&p| p >= 0.0));
        }
    }
}
