//! The synthetic data sets of Figure 1: `hist` (noisy 10-piece histogram,
//! `n = 1000`) and `poly` (noisy degree-5 polynomial, `n = 4000`).
//!
//! The paper does not publish the exact random seeds or noise levels, so the
//! generators are parameterized and seeded; the default constructors choose
//! amplitudes matching the plotted ranges in Figure 1 (roughly `[0, 10]` for
//! `hist` and `[0, 30]` for `poly`).

use crate::noise::add_gaussian_noise;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the noisy piecewise-constant (`hist`) generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistDatasetParams {
    /// Signal length `n`.
    pub n: usize,
    /// Number of constant pieces of the ground truth.
    pub pieces: usize,
    /// Minimum and maximum piece level.
    pub level_range: (f64, f64),
    /// Standard deviation of the additive Gaussian noise.
    pub noise_std: f64,
    /// RNG seed (the data sets are deterministic given the seed).
    pub seed: u64,
}

impl Default for HistDatasetParams {
    fn default() -> Self {
        Self { n: 1_000, pieces: 10, level_range: (1.0, 9.0), noise_std: 0.5, seed: 0xB10C_5EED }
    }
}

/// Generates a noisy piecewise-constant signal together with its clean ground
/// truth. The piece boundaries are drawn uniformly at random (but kept at least
/// `n / (4·pieces)` apart so every piece is clearly visible, as in Figure 1).
pub fn hist_dataset_with(params: &HistDatasetParams) -> (Vec<f64>, Vec<f64>) {
    let HistDatasetParams { n, pieces, level_range, noise_std, seed } = *params;
    let n = n.max(1);
    let pieces = pieces.clamp(1, n);
    let mut rng = StdRng::seed_from_u64(seed);

    // Draw boundaries with a minimum gap, then piece levels.
    let min_gap = (n / (4 * pieces)).max(1);
    let mut boundaries = vec![0usize];
    for j in 1..pieces {
        let ideal = j * n / pieces;
        let jitter = min_gap as i64;
        let lo = (ideal as i64 - jitter).max(boundaries.last().copied().unwrap_or(0) as i64 + 1);
        let hi = (ideal as i64 + jitter).min(n as i64 - (pieces - j) as i64);
        let b = if lo >= hi { ideal as i64 } else { rng.gen_range(lo..hi) };
        boundaries.push(b.clamp(1, n as i64 - 1) as usize);
    }
    boundaries.push(n);

    let mut truth = vec![0.0; n];
    let mut previous_level = f64::NAN;
    for w in boundaries.windows(2) {
        // Re-draw until the level visibly differs from the previous piece.
        let mut level;
        loop {
            level = rng.gen_range(level_range.0..level_range.1);
            if previous_level.is_nan() || (level - previous_level).abs() > 0.5 {
                break;
            }
        }
        previous_level = level;
        for v in &mut truth[w[0]..w[1]] {
            *v = level;
        }
    }

    let mut noisy = truth.clone();
    add_gaussian_noise(&mut noisy, noise_std, &mut rng);
    (noisy, truth)
}

/// The `hist` data set of Figure 1 with its default parameters
/// (`n = 1000`, 10 pieces, Gaussian noise).
pub fn hist_dataset() -> Vec<f64> {
    hist_dataset_with(&HistDatasetParams::default()).0
}

/// Parameters of the noisy polynomial (`poly`) generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolyDatasetParams {
    /// Signal length `n`.
    pub n: usize,
    /// Degree of the ground-truth polynomial.
    pub degree: usize,
    /// Vertical range the polynomial is scaled into.
    pub value_range: (f64, f64),
    /// Standard deviation of the additive Gaussian noise.
    pub noise_std: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PolyDatasetParams {
    fn default() -> Self {
        Self { n: 4_000, degree: 5, value_range: (0.0, 30.0), noise_std: 1.0, seed: 0x901_5EED }
    }
}

/// Generates a noisy polynomial signal together with its clean ground truth.
/// The polynomial is built from random coefficients in the Chebyshev-friendly
/// variable `x ∈ [−1, 1]` and rescaled into `value_range`, which yields the
/// gentle multi-hump shape of the paper's `poly` data set.
pub fn poly_dataset_with(params: &PolyDatasetParams) -> (Vec<f64>, Vec<f64>) {
    let PolyDatasetParams { n, degree, value_range, noise_std, seed } = *params;
    let n = n.max(2);
    let mut rng = StdRng::seed_from_u64(seed);
    let coefficients: Vec<f64> = (0..=degree).map(|_| rng.gen_range(-1.0..1.0)).collect();

    let mut truth: Vec<f64> = (0..n)
        .map(|i| {
            let x = 2.0 * i as f64 / (n - 1) as f64 - 1.0;
            coefficients.iter().rev().fold(0.0, |acc, &c| acc * x + c)
        })
        .collect();
    // Rescale into the requested range.
    let (min, max) = truth
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    let span = (max - min).max(f64::MIN_POSITIVE);
    for v in &mut truth {
        *v = value_range.0 + (*v - min) / span * (value_range.1 - value_range.0);
    }

    let mut noisy = truth.clone();
    add_gaussian_noise(&mut noisy, noise_std, &mut rng);
    (noisy, truth)
}

/// The `poly` data set of Figure 1 with its default parameters
/// (`n = 4000`, degree 5, Gaussian noise).
pub fn poly_dataset() -> Vec<f64> {
    poly_dataset_with(&PolyDatasetParams::default()).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hist_dataset_has_the_documented_shape() {
        let (noisy, truth) = hist_dataset_with(&HistDatasetParams::default());
        assert_eq!(noisy.len(), 1_000);
        assert_eq!(truth.len(), 1_000);
        // The ground truth has exactly 10 constant runs.
        let runs = 1 + truth.windows(2).filter(|w| (w[0] - w[1]).abs() > 1e-12).count();
        assert_eq!(runs, 10);
        // The noise is visible but bounded.
        let max_dev = noisy.iter().zip(&truth).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
        assert!(max_dev > 0.1 && max_dev < 5.0, "max deviation {max_dev}");
    }

    #[test]
    fn hist_dataset_is_deterministic_per_seed() {
        let a = hist_dataset_with(&HistDatasetParams::default());
        let b = hist_dataset_with(&HistDatasetParams::default());
        assert_eq!(a, b);
        let c = hist_dataset_with(&HistDatasetParams { seed: 1, ..Default::default() });
        assert_ne!(a.0, c.0);
    }

    #[test]
    fn poly_dataset_has_the_documented_shape() {
        let (noisy, truth) = poly_dataset_with(&PolyDatasetParams::default());
        assert_eq!(noisy.len(), 4_000);
        let (min, max) = truth
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        assert!((min - 0.0).abs() < 1e-9 && (max - 30.0).abs() < 1e-9, "range [{min}, {max}]");
        // A degree-5 polynomial restricted to a line changes direction at most 4 times.
        let mut direction_changes = 0;
        let mut last_sign = 0i32;
        for w in truth.windows(2) {
            let diff = w[1] - w[0];
            let sign = if diff > 1e-12 {
                1
            } else if diff < -1e-12 {
                -1
            } else {
                0
            };
            if sign != 0 && last_sign != 0 && sign != last_sign {
                direction_changes += 1;
            }
            if sign != 0 {
                last_sign = sign;
            }
        }
        assert!(direction_changes <= 4, "{direction_changes} direction changes");
    }

    #[test]
    fn custom_parameters_are_honored() {
        let (noisy, truth) = hist_dataset_with(&HistDatasetParams {
            n: 200,
            pieces: 4,
            noise_std: 0.0,
            ..Default::default()
        });
        assert_eq!(noisy, truth, "zero noise keeps the signal clean");
        let runs = 1 + truth.windows(2).filter(|w| (w[0] - w[1]).abs() > 1e-12).count();
        assert_eq!(runs, 4);

        let (p_noisy, _) =
            poly_dataset_with(&PolyDatasetParams { n: 64, degree: 2, ..Default::default() });
        assert_eq!(p_noisy.len(), 64);
    }
}
