//! Plain-text tables and CSV output for the experiment binaries.
//!
//! Every experiment prints a human-readable table to stdout and writes the
//! same rows as CSV under the `out/` directory of the workspace (override with
//! the `HIST_BENCH_OUT_DIR` environment variable), so plots can be regenerated
//! without re-running the experiments.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// The directory experiment CSVs are written to.
pub fn out_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("HIST_BENCH_OUT_DIR") {
        return PathBuf::from(dir);
    }
    PathBuf::from("out")
}

/// Writes a CSV file with the given header and rows, creating the parent
/// directory if needed. Returns the full path written.
pub fn write_csv(
    file_name: &str,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<PathBuf> {
    let dir = out_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(file_name);
    let mut file = fs::File::create(&path)?;
    writeln!(file, "{}", header.join(","))?;
    for row in rows {
        writeln!(file, "{}", row.join(","))?;
    }
    Ok(path)
}

/// Renders a fixed-width text table (header + rows) for terminal output.
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let columns = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (c, cell) in row.iter().enumerate().take(columns) {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let mut output = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(c, cell)| format!("{:>width$}", cell, width = widths[c.min(widths.len() - 1)]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    output.push_str(&render_row(&header_cells, &widths));
    output.push('\n');
    output.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (columns - 1)));
    output.push('\n');
    for row in rows {
        output.push_str(&render_row(row, &widths));
        output.push('\n');
    }
    output
}

/// Formats a float with a sensible number of significant digits for tables.
pub fn fmt_float(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.5}")
    }
}

/// Prints a section banner followed by a formatted table, and writes the CSV.
pub fn emit(
    title: &str,
    csv_name: &str,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<PathBuf> {
    println!("\n== {title} ==");
    println!("{}", format_table(header, rows));
    let path = write_csv(csv_name, header, rows)?;
    println!("(csv written to {})", path.display());
    Ok(path)
}

/// Returns true when the given CSV path exists and is non-empty — used by the
/// integration tests of the harness.
pub fn csv_exists(path: &Path) -> bool {
    fs::metadata(path).map(|m| m.len() > 0).unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned_and_complete() {
        let header = ["name", "value"];
        let rows = vec![
            vec!["alpha".to_string(), "1.5".to_string()],
            vec!["a-much-longer-name".to_string(), "2".to_string()],
        ];
        let table = format_table(&header, &rows);
        assert!(table.contains("alpha"));
        assert!(table.contains("a-much-longer-name"));
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4, "header + separator + 2 rows");
    }

    #[test]
    fn float_formatting_is_reasonable() {
        assert_eq!(fmt_float(0.0), "0");
        assert_eq!(fmt_float(1234.5678), "1235");
        assert_eq!(fmt_float(12.34567), "12.346");
        assert_eq!(fmt_float(0.012345), "0.01235");
    }

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("hist_bench_report_test");
        std::env::set_var("HIST_BENCH_OUT_DIR", &dir);
        let path =
            write_csv("unit_test.csv", &["a", "b"], &[vec!["1".to_string(), "2".to_string()]])
                .unwrap();
        assert!(csv_exists(&path));
        let contents = std::fs::read_to_string(&path).unwrap();
        assert_eq!(contents.trim(), "a,b\n1,2");
        std::env::remove_var("HIST_BENCH_OUT_DIR");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
