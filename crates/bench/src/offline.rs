//! The offline histogram-approximation experiment (Table 1 of the paper) and
//! the Figure 1 data-set dump.
//!
//! For each data set (`hist` with `k = 10`, `poly` with `k = 10`, `dow` with
//! `k = 50`) every algorithm constructs a histogram from the dense signal; we
//! record its `ℓ₂` error, the error relative to the exact optimum, its wall
//! clock time, and the time relative to the fastest merging variant — the same
//! four rows the paper reports.

use crate::timing::time_algorithm;
use hist_baselines as baselines;
use hist_core::{
    construct_histogram_dense, construct_histogram_fast, Histogram, MergingParams, SparseFunction,
};
use hist_datasets as datasets;

/// The algorithms of the paper's Table 1 plus the extra baselines this
/// reproduction ships.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OfflineAlgorithm {
    /// Exact V-optimal DP of [JKM+98] — `exactdp`.
    ExactDp,
    /// Exact V-optimal optimum via the pruned DP (identical error, much faster).
    ExactDpPruned,
    /// Algorithm 1 with `δ = 1000`, `γ = 1` (≈ `2k + 1` pieces) — `merging`.
    Merging,
    /// Algorithm 1 invoked with `k/2` (≈ `k + 1` pieces) — `merging2`.
    Merging2,
    /// Aggressive group merging — `fastmerging`.
    FastMerging,
    /// Aggressive group merging invoked with `k/2` — `fastmerging2`.
    FastMerging2,
    /// Dual greedy of [JKM+98] with binary search over the error — `dual`.
    Dual,
    /// Compressed-row approximate DP in the spirit of AHIST [GKS06].
    Gks,
    /// Equi-width buckets (sanity floor).
    EqualWidth,
    /// Equi-depth buckets (sanity floor).
    EqualMass,
    /// Top-down greedy splitting (ablation partner of bottom-up merging).
    GreedySplit,
}

impl OfflineAlgorithm {
    /// The algorithm's name as used in the paper / the output tables.
    pub fn name(&self) -> &'static str {
        match self {
            OfflineAlgorithm::ExactDp => "exactdp",
            OfflineAlgorithm::ExactDpPruned => "exactdp-pruned",
            OfflineAlgorithm::Merging => "merging",
            OfflineAlgorithm::Merging2 => "merging2",
            OfflineAlgorithm::FastMerging => "fastmerging",
            OfflineAlgorithm::FastMerging2 => "fastmerging2",
            OfflineAlgorithm::Dual => "dual",
            OfflineAlgorithm::Gks => "gks",
            OfflineAlgorithm::EqualWidth => "equalwidth",
            OfflineAlgorithm::EqualMass => "equalmass",
            OfflineAlgorithm::GreedySplit => "greedysplit",
        }
    }

    /// The six algorithms of the paper's Table 1 (with the pruned exact DP
    /// standing in for `exactdp` when `paper_scale` is off — same optimum,
    /// practical running time at `n = 16384`).
    pub fn table1_set(use_naive_exact: bool) -> Vec<OfflineAlgorithm> {
        let exact = if use_naive_exact {
            OfflineAlgorithm::ExactDp
        } else {
            OfflineAlgorithm::ExactDpPruned
        };
        vec![
            exact,
            OfflineAlgorithm::Merging,
            OfflineAlgorithm::Merging2,
            OfflineAlgorithm::FastMerging,
            OfflineAlgorithm::FastMerging2,
            OfflineAlgorithm::Dual,
        ]
    }

    /// Runs the algorithm on a dense signal with piece budget `k` and returns
    /// the constructed histogram.
    pub fn run(&self, values: &[f64], k: usize) -> Histogram {
        match self {
            OfflineAlgorithm::ExactDp => {
                baselines::exact_histogram(values, k).expect("valid input").histogram
            }
            OfflineAlgorithm::ExactDpPruned => {
                baselines::exact_histogram_pruned(values, k).expect("valid input").histogram
            }
            OfflineAlgorithm::Merging => {
                let params = MergingParams::paper_defaults(k).expect("k >= 1");
                construct_histogram_dense(values, &params).expect("valid input")
            }
            OfflineAlgorithm::Merging2 => {
                let params = MergingParams::paper_defaults((k / 2).max(1)).expect("k >= 1");
                construct_histogram_dense(values, &params).expect("valid input")
            }
            OfflineAlgorithm::FastMerging => {
                let params = MergingParams::paper_defaults(k).expect("k >= 1");
                let q = SparseFunction::from_dense_keep_zeros(values).expect("finite input");
                construct_histogram_fast(&q, &params).expect("valid input")
            }
            OfflineAlgorithm::FastMerging2 => {
                let params = MergingParams::paper_defaults((k / 2).max(1)).expect("k >= 1");
                let q = SparseFunction::from_dense_keep_zeros(values).expect("finite input");
                construct_histogram_fast(&q, &params).expect("valid input")
            }
            OfflineAlgorithm::Dual => {
                baselines::dual_histogram(values, k).expect("valid input").histogram
            }
            OfflineAlgorithm::Gks => {
                baselines::approx_dp(values, k, 0.1).expect("valid input").histogram
            }
            OfflineAlgorithm::EqualWidth => {
                baselines::equal_width_histogram(values, k).expect("valid input").histogram
            }
            OfflineAlgorithm::EqualMass => {
                baselines::equal_mass_histogram(values, k).expect("valid input").histogram
            }
            OfflineAlgorithm::GreedySplit => {
                baselines::greedy_split_histogram(values, k).expect("valid input").histogram
            }
        }
    }
}

/// One data set of the offline experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Data-set name (`hist`, `poly`, `dow`, …).
    pub name: String,
    /// The dense signal.
    pub values: Vec<f64>,
    /// Piece budget `k` used for this data set.
    pub k: usize,
}

/// The three data sets of Table 1. With `paper_scale` the `dow` series has its
/// full 16384 points; otherwise it is truncated to 4096 points so that the
/// naive `O(n²k)` DP stays affordable in CI runs.
pub fn table1_datasets(paper_scale: bool) -> Vec<DatasetSpec> {
    let dow = if paper_scale {
        datasets::dow_dataset()
    } else {
        datasets::dow_dataset_with_length(4_096)
    };
    vec![
        DatasetSpec { name: "hist".into(), values: datasets::hist_dataset(), k: 10 },
        DatasetSpec { name: "poly".into(), values: datasets::poly_dataset(), k: 10 },
        DatasetSpec { name: "dow".into(), values: dow, k: 50 },
    ]
}

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct OfflineResult {
    /// Algorithm name.
    pub algorithm: String,
    /// Number of pieces of the produced histogram.
    pub pieces: usize,
    /// `ℓ₂` error of the produced histogram against the input signal.
    pub error: f64,
    /// Error relative to the exact optimum (the paper's "Error (relative)").
    pub relative_error: f64,
    /// Wall-clock construction time in milliseconds.
    pub time_ms: f64,
    /// Time relative to the fastest algorithm in the batch.
    pub relative_time: f64,
}

/// Runs a set of algorithms on one data set and assembles the Table 1 rows:
/// errors are reported relative to the first exact algorithm in the batch (or
/// to the best achieved error if none is exact), times relative to the fastest.
pub fn run_offline(
    values: &[f64],
    k: usize,
    algorithms: &[OfflineAlgorithm],
) -> Vec<OfflineResult> {
    let mut raw: Vec<(String, usize, f64, f64)> = Vec::with_capacity(algorithms.len());
    for algorithm in algorithms {
        let (histogram, elapsed) = time_algorithm(|| algorithm.run(values, k));
        let error = histogram
            .l2_distance_dense(values)
            .expect("histogram lives on the signal's domain");
        raw.push((algorithm.name().to_string(), histogram.num_pieces(), error, elapsed * 1e3));
    }

    let reference_error = algorithms
        .iter()
        .position(|a| matches!(a, OfflineAlgorithm::ExactDp | OfflineAlgorithm::ExactDpPruned))
        .map(|idx| raw[idx].2)
        .unwrap_or_else(|| raw.iter().map(|r| r.2).fold(f64::INFINITY, f64::min));
    let fastest = raw.iter().map(|r| r.3).fold(f64::INFINITY, f64::min).max(f64::MIN_POSITIVE);

    raw.into_iter()
        .map(|(algorithm, pieces, error, time_ms)| OfflineResult {
            algorithm,
            pieces,
            error,
            relative_error: if reference_error > 0.0 { error / reference_error } else { 1.0 },
            time_ms,
            relative_time: time_ms / fastest,
        })
        .collect()
}

/// The full Table 1: every data set with the paper's six algorithms.
pub fn table1(paper_scale: bool, use_naive_exact_everywhere: bool) -> Vec<(DatasetSpec, Vec<OfflineResult>)> {
    let specs = table1_datasets(paper_scale);
    specs
        .into_iter()
        .map(|spec| {
            // The naive DP is affordable on hist/poly; on dow it is opt-in.
            let naive = use_naive_exact_everywhere || spec.values.len() <= 4_096;
            let algorithms = OfflineAlgorithm::table1_set(naive);
            let results = run_offline(&spec.values, spec.k, &algorithms);
            (spec, results)
        })
        .collect()
}

/// The Figure 1 payload: `(name, signal)` for the three data sets.
pub fn figure1(paper_scale: bool) -> Vec<(String, Vec<f64>)> {
    table1_datasets(paper_scale)
        .into_iter()
        .map(|spec| (spec.name, spec.values))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merging_names_match_the_paper() {
        assert_eq!(OfflineAlgorithm::Merging.name(), "merging");
        assert_eq!(OfflineAlgorithm::ExactDp.name(), "exactdp");
        let set = OfflineAlgorithm::table1_set(true);
        assert_eq!(set.len(), 6);
        assert_eq!(set[0], OfflineAlgorithm::ExactDp);
    }

    #[test]
    fn offline_rows_have_consistent_relative_columns() {
        let values = datasets::hist_dataset();
        let algorithms = [
            OfflineAlgorithm::ExactDpPruned,
            OfflineAlgorithm::Merging,
            OfflineAlgorithm::Merging2,
            OfflineAlgorithm::Dual,
        ];
        let rows = run_offline(&values, 10, &algorithms);
        assert_eq!(rows.len(), 4);
        // The exact algorithm has relative error 1 by definition.
        assert!((rows[0].relative_error - 1.0).abs() < 1e-12);
        // merging uses roughly 2k+1 pieces and can therefore beat the exact k-piece optimum.
        assert!(rows[1].pieces > 10 && rows[1].pieces <= 23);
        assert!(rows[1].relative_error < 1.2);
        // merging2 uses about k+1 pieces (up to the keep-count stopping slack).
        assert!(rows[2].pieces <= 13);
        // The dual baseline respects the piece budget and cannot beat the optimum.
        assert!(rows[3].pieces <= 10);
        assert!(rows[3].relative_error >= 1.0 - 1e-12);
        // Relative times are normalized to the fastest row.
        let min_rel = rows.iter().map(|r| r.relative_time).fold(f64::INFINITY, f64::min);
        assert!((min_rel - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dataset_specs_match_the_paper_parameters() {
        let specs = table1_datasets(false);
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[0].k, 10);
        assert_eq!(specs[1].k, 10);
        assert_eq!(specs[2].k, 50);
        assert_eq!(specs[0].values.len(), 1_000);
        assert_eq!(specs[1].values.len(), 4_000);
        assert_eq!(specs[2].values.len(), 4_096);
        assert_eq!(table1_datasets(true)[2].values.len(), 16_384);
    }
}
