//! The offline histogram-approximation experiment (Table 1 of the paper) and
//! the Figure 1 data-set dump, driven entirely through the unified
//! [`Estimator`] API.
//!
//! For each data set (`hist` with `k = 10`, `poly` with `k = 10`, `dow` with
//! `k = 50`) every estimator fits the same [`Signal`]; we record its `ℓ₂`
//! error, the error relative to the exact optimum, its wall clock time, and
//! the time relative to the fastest algorithm — the same four rows the paper
//! reports.

use crate::timing::time_algorithm;
use approx_hist::{Estimator, EstimatorBuilder, EstimatorKind, Signal};
use hist_datasets as datasets;

/// The six estimators of the paper's Table 1 (with the pruned exact DP
/// standing in for `exactdp` when `use_naive_exact` is off — same optimum,
/// practical running time at `n = 16384`).
pub fn table1_estimators(k: usize, use_naive_exact: bool) -> Vec<Box<dyn Estimator>> {
    let builder = EstimatorBuilder::new(k);
    let exact = if use_naive_exact { EstimatorKind::ExactDpNaive } else { EstimatorKind::ExactDp };
    [
        exact,
        EstimatorKind::Merging,
        EstimatorKind::Merging2,
        EstimatorKind::FastMerging,
        EstimatorKind::FastMerging2,
        EstimatorKind::Dual,
    ]
    .into_iter()
    .map(|kind| kind.build(builder))
    .collect()
}

/// The extra baselines this reproduction ships beyond the paper's Table 1.
pub fn extra_baseline_estimators(k: usize) -> Vec<Box<dyn Estimator>> {
    let builder = EstimatorBuilder::new(k);
    [
        EstimatorKind::Gks,
        EstimatorKind::EqualWidth,
        EstimatorKind::EqualMass,
        EstimatorKind::GreedySplit,
    ]
    .into_iter()
    .map(|kind| kind.build(builder))
    .collect()
}

/// One data set of the offline experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Data-set name (`hist`, `poly`, `dow`, …).
    pub name: String,
    /// The dense signal.
    pub values: Vec<f64>,
    /// Piece budget `k` used for this data set.
    pub k: usize,
}

/// The three data sets of Table 1. With `paper_scale` the `dow` series has its
/// full 16384 points; otherwise it is truncated to 4096 points so that the
/// naive `O(n²k)` DP stays affordable in CI runs.
pub fn table1_datasets(paper_scale: bool) -> Vec<DatasetSpec> {
    let dow = if paper_scale {
        datasets::dow_dataset()
    } else {
        datasets::dow_dataset_with_length(4_096)
    };
    vec![
        DatasetSpec { name: "hist".into(), values: datasets::hist_dataset(), k: 10 },
        DatasetSpec { name: "poly".into(), values: datasets::poly_dataset(), k: 10 },
        DatasetSpec { name: "dow".into(), values: dow, k: 50 },
    ]
}

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct OfflineResult {
    /// Estimator name.
    pub algorithm: String,
    /// Number of pieces of the produced synopsis.
    pub pieces: usize,
    /// `ℓ₂` error of the produced synopsis against the input signal.
    pub error: f64,
    /// Error relative to the exact optimum (the paper's "Error (relative)").
    pub relative_error: f64,
    /// Wall-clock construction time in milliseconds.
    pub time_ms: f64,
    /// Time relative to the fastest algorithm in the batch.
    pub relative_time: f64,
}

/// Fits every estimator to one dense signal and assembles the Table 1 rows:
/// errors are reported relative to the first exact estimator in the batch (or
/// to the best achieved error if none is exact), times relative to the
/// fastest.
pub fn run_offline(values: &[f64], estimators: &[Box<dyn Estimator>]) -> Vec<OfflineResult> {
    let signal = Signal::from_slice(values).expect("finite signal");
    let mut raw: Vec<(String, usize, f64, f64)> = Vec::with_capacity(estimators.len());
    for estimator in estimators {
        let (synopsis, elapsed) = time_algorithm(|| estimator.fit(&signal).expect("valid input"));
        let error = synopsis.l2_error(&signal).expect("synopsis lives on the signal's domain");
        raw.push((estimator.name().to_string(), synopsis.num_pieces(), error, elapsed * 1e3));
    }

    let reference_error = estimators
        .iter()
        .position(|e| e.name().starts_with("exactdp"))
        .map(|idx| raw[idx].2)
        .unwrap_or_else(|| raw.iter().map(|r| r.2).fold(f64::INFINITY, f64::min));
    let fastest = raw.iter().map(|r| r.3).fold(f64::INFINITY, f64::min).max(f64::MIN_POSITIVE);

    raw.into_iter()
        .map(|(algorithm, pieces, error, time_ms)| OfflineResult {
            algorithm,
            pieces,
            error,
            relative_error: if reference_error > 0.0 { error / reference_error } else { 1.0 },
            time_ms,
            relative_time: time_ms / fastest,
        })
        .collect()
}

/// The full Table 1: every data set with the paper's six estimators.
pub fn table1(
    paper_scale: bool,
    use_naive_exact_everywhere: bool,
) -> Vec<(DatasetSpec, Vec<OfflineResult>)> {
    let specs = table1_datasets(paper_scale);
    specs
        .into_iter()
        .map(|spec| {
            // The naive DP is affordable on hist/poly; on dow it is opt-in.
            let naive = use_naive_exact_everywhere || spec.values.len() <= 4_096;
            let estimators = table1_estimators(spec.k, naive);
            let results = run_offline(&spec.values, &estimators);
            (spec, results)
        })
        .collect()
}

/// The Figure 1 payload: `(name, signal)` for the three data sets.
pub fn figure1(paper_scale: bool) -> Vec<(String, Vec<f64>)> {
    table1_datasets(paper_scale).into_iter().map(|spec| (spec.name, spec.values)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimator_names_match_the_paper() {
        let set = table1_estimators(10, true);
        assert_eq!(set.len(), 6);
        let names: Vec<&str> = set.iter().map(|e| e.name()).collect();
        assert_eq!(
            names,
            ["exactdp-naive", "merging", "merging2", "fastmerging", "fastmerging2", "dual"]
        );
        assert_eq!(table1_estimators(10, false)[0].name(), "exactdp");
        assert_eq!(extra_baseline_estimators(10).len(), 4);
    }

    #[test]
    fn offline_rows_have_consistent_relative_columns() {
        let values = datasets::hist_dataset();
        let builder = EstimatorBuilder::new(10);
        let estimators: Vec<Box<dyn Estimator>> = vec![
            EstimatorKind::ExactDp.build(builder),
            EstimatorKind::Merging.build(builder),
            EstimatorKind::Merging2.build(builder),
            EstimatorKind::Dual.build(builder),
        ];
        let rows = run_offline(&values, &estimators);
        assert_eq!(rows.len(), 4);
        // The exact algorithm has relative error 1 by definition.
        assert!((rows[0].relative_error - 1.0).abs() < 1e-12);
        // merging uses roughly 2k+1 pieces and can therefore beat the exact k-piece optimum.
        assert!(rows[1].pieces > 10 && rows[1].pieces <= 23);
        assert!(rows[1].relative_error < 1.2);
        // merging2 uses about k+1 pieces (up to the keep-count stopping slack).
        assert!(rows[2].pieces <= 13);
        // The dual baseline respects the piece budget and cannot beat the optimum.
        assert!(rows[3].pieces <= 10);
        assert!(rows[3].relative_error >= 1.0 - 1e-12);
        // Relative times are normalized to the fastest row.
        let min_rel = rows.iter().map(|r| r.relative_time).fold(f64::INFINITY, f64::min);
        assert!((min_rel - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dataset_specs_match_the_paper_parameters() {
        let specs = table1_datasets(false);
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[0].k, 10);
        assert_eq!(specs[1].k, 10);
        assert_eq!(specs[2].k, 50);
        assert_eq!(specs[0].values.len(), 1_000);
        assert_eq!(specs[1].values.len(), 4_000);
        assert_eq!(specs[2].values.len(), 4_096);
        assert_eq!(table1_datasets(true)[2].values.len(), 16_384);
    }
}
