//! Minimal wall-clock timing helper for the experiment binaries.
//!
//! Criterion handles the statistically careful measurements in `benches/`; the
//! experiment binaries only need a rough but stable wall-clock number per
//! algorithm (the paper averages fast algorithms over up to 10⁴ trials — we do
//! the same adaptively).

use std::time::Instant;

/// Minimum total measurement window; fast algorithms are repeated until the
/// accumulated time reaches this budget.
const MIN_TOTAL_SECONDS: f64 = 0.05;
/// Upper bound on the number of repetitions for very fast algorithms.
const MAX_REPS: usize = 10_000;

/// Runs `f` once to obtain its result, then — if it was fast — re-runs it until
/// the accumulated measurement window is long enough, returning the result of
/// the first run and the average wall-clock seconds per run.
pub fn time_algorithm<T>(mut f: impl FnMut() -> T) -> (T, f64) {
    let start = Instant::now();
    let result = f();
    let first = start.elapsed().as_secs_f64();
    if first >= MIN_TOTAL_SECONDS {
        return (result, first);
    }
    // Average additional repetitions into the estimate.
    let reps = (((MIN_TOTAL_SECONDS - first) / first.max(1e-9)).ceil() as usize).clamp(1, MAX_REPS);
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    let rest = start.elapsed().as_secs_f64();
    (result, (first + rest) / (reps + 1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn returns_the_result_and_a_positive_time() {
        let (value, seconds) = time_algorithm(|| (0..1000).sum::<u64>());
        assert_eq!(value, 499_500);
        assert!(seconds > 0.0);
        assert!(seconds < 1.0);
    }

    #[test]
    fn slow_functions_are_not_repeated() {
        let (_, seconds) = time_algorithm(|| std::thread::sleep(Duration::from_millis(60)));
        assert!(seconds >= 0.055, "one 60 ms run is enough, measured {seconds}");
        assert!(seconds < 0.3, "the sleep must not be repeated many times, measured {seconds}");
    }
}
