//! The multi-scale (Theorem 2.2) experiment: trace the Pareto curve between
//! the number of histogram pieces and the achieved error with a *single* run of
//! Algorithm 2, and compare each level against the exact optimum `opt_k` and
//! the guarantee `2·opt_k`.
//!
//! The per-`k` extraction goes through the unified
//! [`Hierarchical`](approx_hist::Hierarchical) estimator; the raw curve uses
//! its [`fit_hierarchy`](approx_hist::Hierarchical::fit_hierarchy) extension
//! (the Pareto sweep is the one capability a single fitted synopsis
//! intentionally does not carry).

use approx_hist::{Estimator, EstimatorBuilder, EstimatorKind, Hierarchical, Signal};
use hist_datasets as datasets;

/// One row of the Pareto experiment: a hierarchy level compared against the
/// exact optimum for the matching piece budget.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoRow {
    /// Target piece budget `k`.
    pub k: usize,
    /// Number of pieces of the level selected for this `k` (≤ 8k).
    pub pieces: usize,
    /// `ℓ₂` error of the selected level.
    pub error: f64,
    /// Error of the exact V-optimal `k`-histogram.
    pub opt_k: f64,
    /// The ratio `error / opt_k` (Theorem 3.5 guarantees ≤ 2 up to sampling).
    pub ratio: f64,
}

/// The Pareto experiment on one dense signal: build the hierarchy *once*
/// (that is the point of Algorithm 2), then compare the level served for each
/// requested `k` against the exact optimum.
pub fn pareto_experiment(values: &[f64], ks: &[usize]) -> Vec<ParetoRow> {
    let signal = Signal::from_slice(values).expect("finite signal");
    let hierarchy =
        Hierarchical::new(EstimatorBuilder::new(1)).fit_hierarchy(&signal).expect("valid signal");
    ks.iter()
        .map(|&k| {
            let (histogram, error) = hierarchy.histogram_for_k(k);
            let opt_k = EstimatorKind::ExactDp
                .build(EstimatorBuilder::new(k))
                .fit(&signal)
                .expect("valid signal")
                .l2_error(&signal)
                .expect("same domain");
            ParetoRow {
                k,
                pieces: histogram.num_pieces(),
                error,
                opt_k,
                ratio: if opt_k > 0.0 { error / opt_k } else { f64::NAN },
            }
        })
        .collect()
}

/// The raw Pareto curve (pieces, error) of a single hierarchy on a signal.
pub fn pareto_curve(values: &[f64]) -> Vec<(usize, f64)> {
    let signal = Signal::from_slice(values).expect("finite signal");
    Hierarchical::new(EstimatorBuilder::new(1))
        .fit_hierarchy(&signal)
        .expect("valid signal")
        .pareto_curve()
}

/// The default data set of the Pareto experiment: the `dow` series (truncated
/// to 4096 points unless `paper_scale` is set).
pub fn pareto_dataset(paper_scale: bool) -> Vec<f64> {
    if paper_scale {
        datasets::dow_dataset()
    } else {
        datasets::dow_dataset_with_length(4_096)
    }
}

/// The default piece budgets swept by the Pareto experiment.
pub fn default_ks() -> Vec<usize> {
    vec![1, 2, 5, 10, 20, 50, 100]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guarantee_holds_on_the_dow_series() {
        let values = datasets::dow_dataset_with_length(2_048);
        let rows = pareto_experiment(&values, &[2, 5, 10, 25]);
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(row.pieces <= 8 * row.k, "k={}: {} pieces", row.k, row.pieces);
            assert!(
                row.error <= 2.0 * row.opt_k + 1e-9,
                "k={}: error {} vs 2·opt {}",
                row.k,
                row.error,
                2.0 * row.opt_k
            );
            assert!(row.ratio <= 2.0 + 1e-9);
        }
        // Larger budgets give smaller errors.
        for w in rows.windows(2) {
            assert!(w[1].error <= w[0].error + 1e-12);
        }
    }

    #[test]
    fn curve_is_monotone() {
        let values = datasets::hist_dataset();
        let curve = pareto_curve(&values);
        assert!(curve.len() > 5);
        for w in curve.windows(2) {
            assert!(w[1].0 < w[0].0);
            assert!(w[1].1 + 1e-12 >= w[0].1);
        }
    }
}
