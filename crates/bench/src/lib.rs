//! # hist-bench
//!
//! The experiment harness of the reproduction: shared runners for every table
//! and figure of the paper's evaluation (Section 5) plus the ablations listed
//! in `DESIGN.md`. The binaries in `src/bin/` print the paper's tables and
//! write CSVs under `out/`; the Criterion benchmarks in `benches/` measure the
//! same code paths with statistical rigor.
//!
//! | Paper artifact | Runner | Binary | Criterion bench |
//! |---|---|---|---|
//! | Figure 1 (data sets) | [`offline::figure1`] | `figure1` | — |
//! | Table 1 (offline approximation) | [`offline::table1`] | `table1` | `table1_offline` |
//! | Figure 2 (learning curves) | [`learning::figure2`] | `figure2` | `figure2_learning` |
//! | Theorem 2.2 demo (Pareto) | [`pareto::pareto_experiment`] | `pareto` | `multiscale` |
//! | Theorem 2.3 demo (piecewise poly) | [`polyexp::poly_experiment`] | `poly_experiment` | `polyfit` |
//! | Ablations (δ/γ, fastmerging, DPs) | [`ablation`] | `ablation` | `merging`, `baselines`, `sampling` |

pub mod ablation;
pub mod learning;
pub mod offline;
pub mod pareto;
pub mod polyexp;
pub mod report;
pub mod timing;

pub use offline::{
    extra_baseline_estimators, run_offline, table1, table1_datasets, table1_estimators,
    OfflineResult,
};
pub use timing::time_algorithm;
