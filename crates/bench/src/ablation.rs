//! Ablation experiments for the design choices called out in `DESIGN.md`:
//!
//! * the `δ` (approximation vs pieces) and `γ` (time vs pieces) trade-offs of
//!   Algorithm 1,
//! * pair merging vs aggressive group merging (`merging` vs `fastmerging`),
//! * the naive exact DP vs the pruned exact DP (identical optimum, different
//!   running time),
//! * linear-time selection vs sort-based selection inside the merging loop.

use crate::timing::time_algorithm;
use approx_hist::{Estimator, EstimatorBuilder, ExactDp, Signal};
use hist_core::{
    construct_histogram_fast_with_report, construct_histogram_with_report, MergingParams,
    SparseFunction,
};

/// One row of the `δ` / `γ` parameter sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ParameterSweepRow {
    /// Merging parameter `δ`.
    pub delta: f64,
    /// Merging parameter `γ`.
    pub gamma: f64,
    /// Number of pieces of the output histogram.
    pub pieces: usize,
    /// `ℓ₂` error of the output histogram.
    pub error: f64,
    /// Number of merging rounds executed.
    pub rounds: usize,
    /// Wall-clock time in milliseconds.
    pub time_ms: f64,
}

/// Sweeps `(δ, γ)` combinations of Algorithm 1 on a dense signal.
pub fn parameter_sweep(
    values: &[f64],
    k: usize,
    deltas: &[f64],
    gammas: &[f64],
) -> Vec<ParameterSweepRow> {
    let q = SparseFunction::from_dense_keep_zeros(values).expect("finite signal");
    let mut rows = Vec::with_capacity(deltas.len() * gammas.len());
    for &delta in deltas {
        for &gamma in gammas {
            let params = MergingParams::new(k, delta, gamma).expect("valid parameters");
            let ((histogram, report), seconds) =
                time_algorithm(|| construct_histogram_with_report(&q, &params).expect("valid"));
            rows.push(ParameterSweepRow {
                delta,
                gamma,
                pieces: histogram.num_pieces(),
                error: histogram.l2_distance_dense(values).expect("matching domain"),
                rounds: report.rounds,
                time_ms: seconds * 1e3,
            });
        }
    }
    rows
}

/// One row of the merging-strategy comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct MergingStrategyRow {
    /// Strategy name (`merging` or `fastmerging`).
    pub strategy: String,
    /// Input size `n`.
    pub n: usize,
    /// Number of merging rounds executed.
    pub rounds: usize,
    /// `ℓ₂` error of the output histogram.
    pub error: f64,
    /// Wall-clock time in milliseconds.
    pub time_ms: f64,
}

/// Compares pair merging against aggressive group merging on one signal.
pub fn merging_strategies(values: &[f64], k: usize) -> Vec<MergingStrategyRow> {
    let q = SparseFunction::from_dense_keep_zeros(values).expect("finite signal");
    let params = MergingParams::paper_defaults(k).expect("k >= 1");
    let n = values.len();

    let ((pair_hist, pair_report), pair_seconds) =
        time_algorithm(|| construct_histogram_with_report(&q, &params).expect("valid"));
    let ((fast_hist, fast_report), fast_seconds) =
        time_algorithm(|| construct_histogram_fast_with_report(&q, &params).expect("valid"));

    vec![
        MergingStrategyRow {
            strategy: "merging".into(),
            n,
            rounds: pair_report.rounds,
            error: pair_hist.l2_distance_dense(values).expect("matching domain"),
            time_ms: pair_seconds * 1e3,
        },
        MergingStrategyRow {
            strategy: "fastmerging".into(),
            n,
            rounds: fast_report.rounds,
            error: fast_hist.l2_distance_dense(values).expect("matching domain"),
            time_ms: fast_seconds * 1e3,
        },
    ]
}

/// One row of the exact-DP comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactDpRow {
    /// Implementation name.
    pub implementation: String,
    /// Input size `n`.
    pub n: usize,
    /// Optimal squared error found.
    pub sse: f64,
    /// Wall-clock time in milliseconds.
    pub time_ms: f64,
}

/// Compares the naive `O(n²k)` DP against the pruned DP (both exact), through
/// the unified [`ExactDp`] estimator.
pub fn exact_dp_comparison(values: &[f64], k: usize) -> Vec<ExactDpRow> {
    let n = values.len();
    let signal = Signal::from_slice(values).expect("finite signal");
    let builder = EstimatorBuilder::new(k);
    let (naive, naive_seconds) =
        time_algorithm(|| ExactDp::naive(builder).fit(&signal).expect("valid"));
    let (pruned, pruned_seconds) =
        time_algorithm(|| ExactDp::new(builder).fit(&signal).expect("valid"));
    let sse = |synopsis: &approx_hist::Synopsis| {
        let err = synopsis.l2_error(&signal).expect("same domain");
        err * err
    };
    vec![
        ExactDpRow {
            implementation: "naive".into(),
            n,
            sse: sse(&naive),
            time_ms: naive_seconds * 1e3,
        },
        ExactDpRow {
            implementation: "pruned".into(),
            n,
            sse: sse(&pruned),
            time_ms: pruned_seconds * 1e3,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use hist_datasets as datasets;

    #[test]
    fn delta_controls_the_piece_count() {
        let values = datasets::hist_dataset();
        let rows = parameter_sweep(&values, 10, &[0.25, 1.0, 1000.0], &[1.0]);
        assert_eq!(rows.len(), 3);
        // Small δ allows more pieces (and hence at most the error of large δ).
        assert!(rows[0].pieces >= rows[2].pieces);
        assert!(rows[0].error <= rows[2].error + 1e-9);
        for row in &rows {
            assert!(row.time_ms > 0.0);
            assert!(row.rounds > 0);
        }
    }

    #[test]
    fn merging_strategy_comparison_is_consistent() {
        let values = datasets::dow_dataset_with_length(4_096);
        let rows = merging_strategies(&values, 50);
        assert_eq!(rows.len(), 2);
        let pair = &rows[0];
        let fast = &rows[1];
        assert!(fast.rounds < pair.rounds, "fastmerging does fewer rounds");
        // Both produce sensible errors on the same signal.
        assert!(pair.error.is_finite() && fast.error.is_finite());
        assert!(fast.error <= 3.0 * pair.error);
    }

    #[test]
    fn exact_dp_implementations_agree() {
        let values = datasets::dow_dataset_with_length(512);
        let rows = exact_dp_comparison(&values, 10);
        assert_eq!(rows.len(), 2);
        assert!((rows[0].sse - rows[1].sse).abs() < 1e-6 * (1.0 + rows[0].sse));
    }
}
