//! Regenerates Figure 2 of the paper: learning curves (mean `ℓ₂` error ± one
//! standard deviation versus the number of samples) for `exactdp`, `merging`
//! and `merging2` on the `hist'`, `poly'` and `dow'` distributions, together
//! with the `opt_k` reference line.
//!
//! Usage:
//! ```text
//! cargo run --release -p hist-bench --bin figure2 [-- --trials N] [--quick]
//! ```
//! The paper uses 20 trials and sample sizes 1000, 2000, …, 10000; `--quick`
//! runs 5 trials over three sample sizes for a fast smoke run.

use hist_bench::learning::figure2;
use hist_bench::report::{emit, fmt_float};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let trials = args
        .iter()
        .position(|a| a == "--trials")
        .and_then(|idx| args.get(idx + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(if quick { 5 } else { 20 });
    let sample_sizes: Vec<usize> =
        if quick { vec![1_000, 4_000, 10_000] } else { (1..=10).map(|i| i * 1_000).collect() };

    println!("Figure 2 — learning from samples ({trials} trials per point)");
    for experiment in figure2(&sample_sizes, trials, 2015) {
        let mut rows: Vec<Vec<String>> = Vec::new();
        for curve in &experiment.curves {
            for point in &curve.points {
                rows.push(vec![
                    curve.algorithm.clone(),
                    point.samples.to_string(),
                    fmt_float(point.mean_error),
                    fmt_float(point.std_error),
                    fmt_float(experiment.opt_k),
                ]);
            }
        }
        emit(
            &format!("{} (opt_k = {})", experiment.dataset, fmt_float(experiment.opt_k)),
            &format!("figure2_{}.csv", experiment.dataset.replace('\'', "_prime")),
            &["algorithm", "samples", "mean_l2_error", "std_l2_error", "opt_k"],
            &rows,
        )
        .expect("writing the CSV succeeds");
    }
}
