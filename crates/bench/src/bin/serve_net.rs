//! Seeded loopback benchmark for the network serving layer, written as JSON
//! to `BENCH_net.json` at the workspace root (override with
//! `HIST_BENCH_NET_OUT`).
//!
//! Two sweeps share one seeded workload generator:
//!
//! * **Batch sweep** — one `HistServer` on an ephemeral loopback port serves
//!   an `n = 2^16` seeded step synopsis at the default key; one blocking
//!   `HistClient` issues quantile and mass batches of size 1, 64 and 4096.
//!   For each (op, batch size) the bin reports requests/s, queries/s and
//!   p50/p99 request latency — the round-trip cost of the wire (framing,
//!   CRC, syscalls) amortized over growing batches.
//! * **Keyed sweep** — store maps of 1, 1 000 and 100 000 keys, each key
//!   serving a small seeded synopsis; the client retargets a seeded random
//!   key before every request. The spread across key counts isolates the
//!   cost of the keyed lookup path (shard hash + HashMap probe + key section
//!   on the wire) from the query itself.
//!
//! A correctness gate cross-checks every batch against the local synopsis
//! bit for bit before timing starts.

use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;

use approx_hist::{
    Estimator, EstimatorBuilder, GreedyMerging, HistClient, HistServer, Interval, ServerConfig,
    Signal, StoreMap, Synopsis,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 1 << 16;
const K: usize = 32;
const SEED: u64 = 2015;
const BATCH_SIZES: [usize; 3] = [1, 64, 4096];
const KEY_COUNTS: [usize; 3] = [1, 1_000, 100_000];
/// Batch size of every keyed-sweep request (small: the lookup is the point).
const KEYED_BATCH: usize = 16;

/// Requests per (op, batch size) measurement, scaled down for big batches.
fn requests_for(batch: usize) -> usize {
    match batch {
        0..=1 => 2_000,
        2..=64 => 1_000,
        _ => 150,
    }
}

fn seeded_synopsis() -> Synopsis {
    let mut rng = StdRng::seed_from_u64(SEED);
    let values: Vec<f64> = (0..N)
        .map(|i| ((i / (N / 32)) % 4) as f64 * 3.0 + 1.0 + rng.gen_range(0.0..0.25))
        .collect();
    GreedyMerging::new(EstimatorBuilder::new(K))
        .fit(&Signal::from_dense(values).expect("finite signal"))
        .expect("valid fit")
}

/// A small per-key synopsis for the keyed sweep (cloned across keys: the
/// sweep measures the lookup path, not per-key fit variety).
fn keyed_synopsis() -> Synopsis {
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x5EED);
    let values: Vec<f64> =
        (0..1024).map(|i| ((i / 128) % 3) as f64 + 1.0 + rng.gen_range(0.0..0.5)).collect();
    GreedyMerging::new(EstimatorBuilder::new(8))
        .fit(&Signal::from_dense(values).expect("finite signal"))
        .expect("valid fit")
}

/// Latency percentiles over a sorted sample, by nearest-rank.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

struct Measurement {
    op: String,
    keys: usize,
    batch: usize,
    requests: usize,
    requests_per_s: f64,
    queries_per_s: f64,
    p50_us: f64,
    p99_us: f64,
}

fn measure(
    op: &str,
    keys: usize,
    batch: usize,
    requests: usize,
    mut round_trip: impl FnMut() -> usize,
) -> Measurement {
    // Warm-up: fill caches, establish the steady state.
    for _ in 0..requests / 10 + 1 {
        round_trip();
    }
    let mut latencies = Vec::with_capacity(requests);
    let started = Instant::now();
    let mut answered = 0usize;
    for _ in 0..requests {
        let t0 = Instant::now();
        answered += round_trip();
        latencies.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    let elapsed = started.elapsed().as_secs_f64();
    assert_eq!(answered, requests * batch, "{op}/{batch}: short answers");
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let m = Measurement {
        op: op.to_string(),
        keys,
        batch,
        requests,
        requests_per_s: requests as f64 / elapsed,
        queries_per_s: (requests * batch) as f64 / elapsed,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
    };
    println!(
        "{op:>14} keys {keys:>6} batch {batch:>4}: {:>9.0} req/s {:>11.0} q/s | p50 {:>7.1}us p99 {:>7.1}us",
        m.requests_per_s, m.queries_per_s, m.p50_us, m.p99_us
    );
    m
}

/// The original single-store sweep: growing batches at the default key.
fn batch_sweep(results: &mut Vec<Measurement>) {
    let synopsis = seeded_synopsis();
    let map = Arc::new(StoreMap::with_initial(synopsis.clone()));
    let server = HistServer::bind("127.0.0.1:0", map, ServerConfig::default())
        .expect("ephemeral loopback bind");
    let mut client = HistClient::connect(server.local_addr()).expect("connect");
    println!(
        "serve_net: n = {N}, k = {K}, {} pieces, addr {}",
        synopsis.num_pieces(),
        server.local_addr()
    );

    // Seeded query workloads, one pool per batch size.
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x0E7);
    for batch in BATCH_SIZES {
        let ps: Vec<f64> = (0..batch).map(|_| rng.gen_range(0.0..=1.0)).collect();
        let ranges: Vec<Interval> = (0..batch)
            .map(|_| {
                let mut ends = [rng.gen_range(0..N), rng.gen_range(0..N)];
                ends.sort_unstable();
                Interval::new(ends[0], ends[1]).expect("ordered ends")
            })
            .collect();

        // Correctness gate: the wire answers must equal the local ones bit
        // for bit before the timing means anything.
        let remote = client.quantile_batch(&ps).expect("quantile batch");
        assert_eq!(remote.value, synopsis.quantile_batch(&ps).expect("local"), "quantile gate");
        let remote = client.mass_batch(&ranges).expect("mass batch");
        let local = synopsis.mass_batch(&ranges).expect("local");
        assert_eq!(
            remote.value.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            local.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "mass gate"
        );

        let requests = requests_for(batch);
        results.push(measure("quantile", 1, batch, requests, || {
            client.quantile_batch(&ps).expect("quantile batch").value.len()
        }));
        results.push(measure("mass", 1, batch, requests, || {
            client.mass_batch(&ranges).expect("mass batch").value.len()
        }));
    }
}

/// The keyed sweep: fixed small batches against maps of growing key counts,
/// retargeting a seeded random key before every request.
fn keyed_sweep(results: &mut Vec<Measurement>) {
    let synopsis = keyed_synopsis();
    let ps: Vec<f64> = {
        let mut rng = StdRng::seed_from_u64(SEED ^ 0xF00D);
        (0..KEYED_BATCH).map(|_| rng.gen_range(0.0..=1.0)).collect()
    };
    let local = synopsis.quantile_batch(&ps).expect("local keyed quantiles");

    for keys in KEY_COUNTS {
        // Populate in-process: the sweep measures serving, not ingest.
        let map = Arc::new(StoreMap::new());
        for i in 0..keys {
            map.publish(&format!("tenant/{i:06}"), synopsis.clone()).expect("publish");
        }
        let server = HistServer::bind("127.0.0.1:0", Arc::clone(&map), ServerConfig::default())
            .expect("ephemeral loopback bind");
        let mut client = HistClient::connect(server.local_addr()).expect("connect");

        // Correctness gate on a sampled key.
        client.set_key(&format!("tenant/{:06}", keys / 2)).expect("valid key");
        assert_eq!(client.quantile_batch(&ps).expect("keyed gate").value, local, "keyed gate");

        let mut rng = StdRng::seed_from_u64(SEED ^ keys as u64);
        let requests = 1_000;
        results.push(measure("keyed_quantile", keys, KEYED_BATCH, requests, || {
            let key = format!("tenant/{:06}", rng.gen_range(0..keys));
            client.set_key(&key).expect("valid key");
            client.quantile_batch(&ps).expect("keyed quantile batch").value.len()
        }));
    }
}

fn main() {
    let mut results = Vec::new();
    batch_sweep(&mut results);
    keyed_sweep(&mut results);

    let entries: Vec<String> = results
        .iter()
        .map(|m| {
            format!(
                r#"    {{
      "op": "{}",
      "keys": {},
      "batch": {},
      "requests": {},
      "requests_per_s": {:.1},
      "queries_per_s": {:.1},
      "p50_latency_us": {:.2},
      "p99_latency_us": {:.2}
    }}"#,
                m.op,
                m.keys,
                m.batch,
                m.requests,
                m.requests_per_s,
                m.queries_per_s,
                m.p50_us,
                m.p99_us
            )
        })
        .collect();
    let json = format!(
        r#"{{
  "bench": "serve_net",
  "n": {N},
  "k": {K},
  "seed": {SEED},
  "transport": "tcp loopback, one blocking connection",
  "batch_sizes": [1, 64, 4096],
  "key_counts": [1, 1000, 100000],
  "measurements": [
{}
  ]
}}
"#,
        entries.join(",\n")
    );

    let path = std::env::var("HIST_BENCH_NET_OUT").unwrap_or_else(|_| "BENCH_net.json".into());
    let mut file = std::fs::File::create(&path).expect("writable output path");
    file.write_all(json.as_bytes()).expect("write BENCH_net.json");
    println!("json written to {path}");
}
