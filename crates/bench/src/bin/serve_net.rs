//! Seeded loopback benchmark for the network serving layer, written as JSON
//! to `BENCH_net.json` at the workspace root (override with
//! `HIST_BENCH_NET_OUT`). Set `HIST_BENCH_NET_FAST=1` for a seconds-long
//! smoke run (CI) with shrunken request counts and connection fleets.
//!
//! Three sweeps share one seeded workload generator:
//!
//! * **Batch sweep** — one `HistServer` on an ephemeral loopback port serves
//!   an `n = 2^16` seeded step synopsis at the default key; one blocking
//!   `HistClient` issues quantile and mass batches of size 1, 64 and 4096.
//!   For each (op, batch size) the bin reports requests/s, queries/s and
//!   p50/p99 request latency — the round-trip cost of the wire (framing,
//!   CRC, syscalls) amortized over growing batches.
//! * **Keyed sweep** — store maps of 1, 1 000 and 100 000 keys, each key
//!   serving a small seeded synopsis; the client retargets a seeded random
//!   key before every request. The spread across key counts isolates the
//!   cost of the keyed lookup path (shard hash + HashMap probe + key section
//!   on the wire) from the query itself.
//! * **Connection sweep** — fleets of 1, 64 and 1024 concurrent pipelined
//!   connections against BOTH server modes (thread-per-connection blocking
//!   vs the evented readiness loop). Every connection ships 32 batch-1
//!   quantile requests per write and drains 32 in-order responses, so the
//!   sweep measures aggregate request throughput when per-request syscalls
//!   are amortized away — the workload the evented mode exists for. Latency
//!   columns report amortized per-request time inside a pipelined wave.
//!
//! A correctness gate cross-checks every batch against the local synopsis
//! bit for bit before timing starts.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use approx_hist::net::{encode_request, read_message, Request, Response, DEFAULT_MAX_FRAME_BYTES};
use approx_hist::{
    Estimator, EstimatorBuilder, GreedyMerging, HistClient, HistServer, Interval, ServerConfig,
    ServerMode, Signal, StoreMap, Synopsis, DEFAULT_KEY,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 1 << 16;
const K: usize = 32;
const SEED: u64 = 2015;
const BATCH_SIZES: [usize; 3] = [1, 64, 4096];
const KEY_COUNTS: [usize; 3] = [1, 1_000, 100_000];
/// Batch size of every keyed-sweep request (small: the lookup is the point).
const KEYED_BATCH: usize = 16;
/// Connection-fleet sizes of the connection sweep.
const CONN_COUNTS: [usize; 3] = [1, 64, 1024];
/// Requests per write syscall in the connection sweep.
const PIPELINE_DEPTH: usize = 32;
/// Driver threads multiplexing the connection fleet.
const CONN_SWEEP_THREADS: usize = 8;

/// Smoke mode: shrink every sweep to seconds for CI.
fn fast_mode() -> bool {
    std::env::var("HIST_BENCH_NET_FAST").is_ok()
}

/// Requests per (op, batch size) measurement, scaled down for big batches.
fn requests_for(batch: usize) -> usize {
    let full = match batch {
        0..=1 => 2_000,
        2..=64 => 1_000,
        _ => 150,
    };
    if fast_mode() {
        (full / 10).max(30)
    } else {
        full
    }
}

/// Pipelined rounds per connection in the connection sweep: bigger fleets
/// carry proportionally fewer rounds so every leg moves a similar volume.
fn rounds_for(conns: usize) -> usize {
    if fast_mode() {
        if conns == 1 {
            100
        } else {
            20
        }
    } else {
        match conns {
            1 => 3_000,
            2..=64 => 150,
            _ => 32,
        }
    }
}

fn seeded_synopsis() -> Synopsis {
    let mut rng = StdRng::seed_from_u64(SEED);
    let values: Vec<f64> = (0..N)
        .map(|i| ((i / (N / 32)) % 4) as f64 * 3.0 + 1.0 + rng.gen_range(0.0..0.25))
        .collect();
    GreedyMerging::new(EstimatorBuilder::new(K))
        .fit(&Signal::from_dense(values).expect("finite signal"))
        .expect("valid fit")
}

/// A small per-key synopsis for the keyed sweep (cloned across keys: the
/// sweep measures the lookup path, not per-key fit variety).
fn keyed_synopsis() -> Synopsis {
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x5EED);
    let values: Vec<f64> =
        (0..1024).map(|i| ((i / 128) % 3) as f64 + 1.0 + rng.gen_range(0.0..0.5)).collect();
    GreedyMerging::new(EstimatorBuilder::new(8))
        .fit(&Signal::from_dense(values).expect("finite signal"))
        .expect("valid fit")
}

/// Latency percentiles over a sorted sample, by nearest-rank.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

struct Measurement {
    op: String,
    mode: &'static str,
    conns: usize,
    keys: usize,
    batch: usize,
    requests: usize,
    requests_per_s: f64,
    queries_per_s: f64,
    p50_us: f64,
    p99_us: f64,
}

fn mode_name(mode: ServerMode) -> &'static str {
    match mode {
        ServerMode::Blocking => "blocking",
        ServerMode::Evented => "evented",
    }
}

fn measure(
    op: &str,
    keys: usize,
    batch: usize,
    requests: usize,
    mut round_trip: impl FnMut() -> usize,
) -> Measurement {
    // Warm-up: fill caches, establish the steady state.
    for _ in 0..requests / 10 + 1 {
        round_trip();
    }
    let mut latencies = Vec::with_capacity(requests);
    let started = Instant::now();
    let mut answered = 0usize;
    for _ in 0..requests {
        let t0 = Instant::now();
        answered += round_trip();
        latencies.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    let elapsed = started.elapsed().as_secs_f64();
    assert_eq!(answered, requests * batch, "{op}/{batch}: short answers");
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let m = Measurement {
        op: op.to_string(),
        mode: "blocking",
        conns: 1,
        keys,
        batch,
        requests,
        requests_per_s: requests as f64 / elapsed,
        queries_per_s: (requests * batch) as f64 / elapsed,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
    };
    println!(
        "{op:>14} keys {keys:>6} batch {batch:>4}: {:>9.0} req/s {:>11.0} q/s | p50 {:>7.1}us p99 {:>7.1}us",
        m.requests_per_s, m.queries_per_s, m.p50_us, m.p99_us
    );
    m
}

/// The original single-store sweep: growing batches at the default key.
fn batch_sweep(results: &mut Vec<Measurement>) {
    let synopsis = seeded_synopsis();
    let map = Arc::new(StoreMap::with_initial(synopsis.clone()));
    let server = HistServer::bind("127.0.0.1:0", map, ServerConfig::default())
        .expect("ephemeral loopback bind");
    let mut client = HistClient::connect(server.local_addr()).expect("connect");
    println!(
        "serve_net: n = {N}, k = {K}, {} pieces, addr {}",
        synopsis.num_pieces(),
        server.local_addr()
    );

    // Seeded query workloads, one pool per batch size.
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x0E7);
    for batch in BATCH_SIZES {
        let ps: Vec<f64> = (0..batch).map(|_| rng.gen_range(0.0..=1.0)).collect();
        let ranges: Vec<Interval> = (0..batch)
            .map(|_| {
                let mut ends = [rng.gen_range(0..N), rng.gen_range(0..N)];
                ends.sort_unstable();
                Interval::new(ends[0], ends[1]).expect("ordered ends")
            })
            .collect();

        // Correctness gate: the wire answers must equal the local ones bit
        // for bit before the timing means anything.
        let remote = client.quantile_batch(&ps).expect("quantile batch");
        assert_eq!(remote.value, synopsis.quantile_batch(&ps).expect("local"), "quantile gate");
        let remote = client.mass_batch(&ranges).expect("mass batch");
        let local = synopsis.mass_batch(&ranges).expect("local");
        assert_eq!(
            remote.value.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            local.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "mass gate"
        );

        let requests = requests_for(batch);
        results.push(measure("quantile", 1, batch, requests, || {
            client.quantile_batch(&ps).expect("quantile batch").value.len()
        }));
        results.push(measure("mass", 1, batch, requests, || {
            client.mass_batch(&ranges).expect("mass batch").value.len()
        }));
    }
}

/// The keyed sweep: fixed small batches against maps of growing key counts,
/// retargeting a seeded random key before every request.
fn keyed_sweep(results: &mut Vec<Measurement>) {
    let synopsis = keyed_synopsis();
    let ps: Vec<f64> = {
        let mut rng = StdRng::seed_from_u64(SEED ^ 0xF00D);
        (0..KEYED_BATCH).map(|_| rng.gen_range(0.0..=1.0)).collect()
    };
    let local = synopsis.quantile_batch(&ps).expect("local keyed quantiles");

    for keys in KEY_COUNTS {
        if fast_mode() && keys > 1_000 {
            continue;
        }
        // Populate in-process: the sweep measures serving, not ingest.
        let map = Arc::new(StoreMap::new());
        for i in 0..keys {
            map.publish(&format!("tenant/{i:06}"), synopsis.clone()).expect("publish");
        }
        let server = HistServer::bind("127.0.0.1:0", Arc::clone(&map), ServerConfig::default())
            .expect("ephemeral loopback bind");
        let mut client = HistClient::connect(server.local_addr()).expect("connect");

        // Correctness gate on a sampled key.
        client.set_key(&format!("tenant/{:06}", keys / 2)).expect("valid key");
        assert_eq!(client.quantile_batch(&ps).expect("keyed gate").value, local, "keyed gate");

        let mut rng = StdRng::seed_from_u64(SEED ^ keys as u64);
        let requests = if fast_mode() { 100 } else { 1_000 };
        results.push(measure("keyed_quantile", keys, KEYED_BATCH, requests, || {
            let key = format!("tenant/{:06}", rng.gen_range(0..keys));
            client.set_key(&key).expect("valid key");
            client.quantile_batch(&ps).expect("keyed quantile batch").value.len()
        }));
    }
}

/// Connects with retries: a 1024-connection burst can overflow the accept
/// backlog, and the bench should ride out dropped SYNs instead of dying.
fn connect_retrying(addr: SocketAddr) -> TcpStream {
    let mut tries = 0;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                stream
                    .set_read_timeout(Some(Duration::from_secs(60)))
                    .expect("socket read timeout");
                let _ = stream.set_nodelay(true);
                return stream;
            }
            Err(_) if tries < 50 => {
                tries += 1;
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => panic!("conn-sweep connect failed: {e}"),
        }
    }
}

/// The connection sweep: pipelined fleets of growing size against both
/// server modes. Every connection writes `PIPELINE_DEPTH` identical batch-1
/// quantile requests in one syscall and drains the (fixed-size, in-order)
/// responses; driver threads multiplex the fleet in waves so up to
/// `conns * PIPELINE_DEPTH` requests are in flight at once.
fn conn_sweep(results: &mut Vec<Measurement>) {
    let synopsis = seeded_synopsis();
    let conn_counts: Vec<usize> = if fast_mode() { vec![1, 8] } else { CONN_COUNTS.to_vec() };

    let p = StdRng::seed_from_u64(SEED ^ 0xC0).gen_range(0.0..=1.0);
    let expected = synopsis.quantile(p).expect("local quantile") as u64;
    let request = encode_request(&Request::QuantileBatch { key: DEFAULT_KEY.into(), ps: vec![p] });
    let wire: Vec<u8> =
        std::iter::repeat_with(|| request.clone()).take(PIPELINE_DEPTH).flatten().collect();

    for mode in [ServerMode::Blocking, ServerMode::Evented] {
        for &conns in &conn_counts {
            let map = Arc::new(StoreMap::with_initial(synopsis.clone()));
            let config = ServerConfig {
                mode,
                // Blocking mode parks one worker on every live connection;
                // evented mode needs only a small batch-worker pool (this
                // box has one core — more workers just thrash it).
                connection_threads: if mode == ServerMode::Blocking { conns + 1 } else { 2 },
                ..ServerConfig::default()
            };
            let server =
                HistServer::bind("127.0.0.1:0", map, config).expect("ephemeral loopback bind");
            let addr = server.local_addr();

            // Correctness gate + frame-size probe: one fully decoded
            // pipelined round. Identical requests yield identical-length
            // responses, so the timed loop can drain by exact byte count.
            let mut response_len = 0usize;
            let mut probe = connect_retrying(addr);
            probe.write_all(&wire).expect("probe pipeline");
            for _ in 0..PIPELINE_DEPTH {
                let frame = read_message(&mut probe, DEFAULT_MAX_FRAME_BYTES)
                    .expect("probe read")
                    .expect("probe response");
                let mut message = (frame.len() as u32).to_le_bytes().to_vec();
                message.extend_from_slice(&frame);
                match approx_hist::net::decode_response(&message).expect("probe decode") {
                    Response::QuantileBatch { indices, .. } => {
                        assert_eq!(indices, vec![expected], "conn-sweep correctness gate")
                    }
                    other => panic!("conn-sweep gate: unexpected {other:?}"),
                }
                response_len = 4 + frame.len();
            }
            drop(probe);

            let threads = conns.min(CONN_SWEEP_THREADS);
            let rounds = rounds_for(conns);
            let barrier = Barrier::new(threads + 1);
            let total_requests = conns * rounds * PIPELINE_DEPTH;
            let mut latencies: Vec<f64> = Vec::with_capacity(threads * rounds);
            let mut elapsed = 0.0f64;

            std::thread::scope(|scope| {
                let barrier = &barrier;
                let wire = &wire;
                let handles: Vec<_> = (0..threads)
                    .map(|t| {
                        scope.spawn(move || {
                            let my_conns = conns / threads + usize::from(t < conns % threads);
                            let mut sockets: Vec<TcpStream> =
                                (0..my_conns).map(|_| connect_retrying(addr)).collect();
                            let mut buf = vec![0u8; response_len * PIPELINE_DEPTH];
                            // Untimed warm-up waves: grow every buffer on
                            // both sides to its steady-state capacity before
                            // the clock starts.
                            for _ in 0..2 {
                                for socket in &mut sockets {
                                    socket.write_all(wire).expect("warmup write");
                                }
                                for socket in &mut sockets {
                                    socket.read_exact(&mut buf).expect("warmup drain");
                                }
                            }
                            barrier.wait();
                            // One wave per round: write every pipeline, then
                            // drain every connection in order. Latency is
                            // amortized per request inside the wave.
                            let mut wave_latencies = Vec::with_capacity(rounds);
                            for _ in 0..rounds {
                                let t0 = Instant::now();
                                for socket in &mut sockets {
                                    socket.write_all(wire).expect("pipeline write");
                                }
                                for socket in &mut sockets {
                                    socket.read_exact(&mut buf).expect("pipeline drain");
                                }
                                let per_request = t0.elapsed().as_secs_f64() * 1e6
                                    / (my_conns * PIPELINE_DEPTH) as f64;
                                wave_latencies.push(per_request);
                                // Cheap integrity check: the first frame in
                                // the wave still has the probed length.
                                let announced =
                                    u32::from_le_bytes(buf[0..4].try_into().expect("prefix"));
                                assert_eq!(announced as usize, response_len - 4, "frame drift");
                            }
                            wave_latencies
                        })
                    })
                    .collect();
                barrier.wait();
                let t0 = Instant::now();
                for handle in handles {
                    latencies.extend(handle.join().expect("driver thread"));
                }
                elapsed = t0.elapsed().as_secs_f64();
            });

            latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
            let m = Measurement {
                op: "pipelined_quantile".to_string(),
                mode: mode_name(mode),
                conns,
                keys: 1,
                batch: 1,
                requests: total_requests,
                requests_per_s: total_requests as f64 / elapsed,
                queries_per_s: total_requests as f64 / elapsed,
                p50_us: percentile(&latencies, 0.50),
                p99_us: percentile(&latencies, 0.99),
            };
            println!(
                "{:>14} {:>9} conns {:>5}: {:>9.0} req/s | amortized p50 {:>7.2}us p99 {:>7.2}us",
                m.op, m.mode, m.conns, m.requests_per_s, m.p50_us, m.p99_us
            );
            results.push(m);
        }
    }
}

fn main() {
    let mut results = Vec::new();
    batch_sweep(&mut results);
    keyed_sweep(&mut results);
    conn_sweep(&mut results);

    // The ISSUE's headline ratio: aggregate pipelined throughput at the
    // largest evented fleet over the classic one-connection synchronous
    // baseline measured in the same run.
    let baseline =
        results.iter().find(|m| m.op == "quantile" && m.batch == 1).map(|m| m.requests_per_s);
    let peak = results
        .iter()
        .filter(|m| m.op == "pipelined_quantile" && m.mode == "evented")
        .max_by_key(|m| m.conns)
        .map(|m| (m.conns, m.requests_per_s));
    if let (Some(baseline), Some((conns, peak))) = (baseline, peak) {
        println!(
            "evented {conns}-conn aggregate vs 1-conn sync baseline: {:.1}x ({:.0} vs {:.0} req/s)",
            peak / baseline,
            peak,
            baseline
        );
    }

    let entries: Vec<String> = results
        .iter()
        .map(|m| {
            format!(
                r#"    {{
      "op": "{}",
      "mode": "{}",
      "conns": {},
      "keys": {},
      "batch": {},
      "requests": {},
      "requests_per_s": {:.1},
      "queries_per_s": {:.1},
      "p50_latency_us": {:.2},
      "p99_latency_us": {:.2}
    }}"#,
                m.op,
                m.mode,
                m.conns,
                m.keys,
                m.batch,
                m.requests,
                m.requests_per_s,
                m.queries_per_s,
                m.p50_us,
                m.p99_us
            )
        })
        .collect();
    let json = format!(
        r#"{{
  "bench": "serve_net",
  "n": {N},
  "k": {K},
  "seed": {SEED},
  "transport": "tcp loopback; batch/keyed sweeps: one synchronous connection; conn sweep: pipelined fleets vs both server modes",
  "batch_sizes": [1, 64, 4096],
  "key_counts": [1, 1000, 100000],
  "conn_counts": [1, 64, 1024],
  "pipeline_depth": {PIPELINE_DEPTH},
  "measurements": [
{}
  ]
}}
"#,
        entries.join(",\n")
    );

    let path = std::env::var("HIST_BENCH_NET_OUT").unwrap_or_else(|_| "BENCH_net.json".into());
    let mut file = std::fs::File::create(&path).expect("writable output path");
    file.write_all(json.as_bytes()).expect("write BENCH_net.json");
    println!("json written to {path}");
}
