//! Self-tuning maintenance benchmark: steady-state merge cost vs refit cost
//! vs served error, with and without an error-budget policy, written as JSON
//! to `BENCH_maintenance.json` at the workspace root (override with
//! `HIST_BENCH_MAINT_OUT`). Set `HIST_BENCH_MAINT_FAST=1` for a
//! seconds-long smoke run (CI uses it).
//!
//! A seeded noisy-step stream is cut into chunks, each pre-fitted to a chunk
//! synopsis (fit time is excluded — the serving layer ingests synopses, not
//! raw signals). Three regimes then ingest the same chunk sequence into a
//! fresh [`SynopsisStore`] each:
//!
//! * `merge_only` — no policy: the left-deep merge chain the steady state
//!   builds without maintenance. Cheapest per update, worst served error.
//! * `policy` — the error-budget policy, calibrated from the measured run:
//!   the budget is an eighth of the total drift bound the unmaintained
//!   chain accumulates, so refits trip a handful of times and their cost is
//!   amortized over many updates.
//! * `refit_every_update` — a hair-trigger policy that comes due on every
//!   merge: the refit cost is paid on every update — the cost upper bound
//!   the policy is meant to avoid. (With an interval of 1 the retained
//!   decomposition never exceeds two entries, so each refit *is* the
//!   pairwise merge: all cost, no accuracy gain.)
//!
//! Per regime the JSON reports total and per-update merge seconds, total
//! refit seconds, refit count, the final served L2 error and its ratio to
//! the direct fit of the whole stream. The served synopses carry `2k + 1`
//! pieces (the merge budget), so that ratio can land below 1 against the
//! `k`-piece direct fit; the committed gate is the same `C = 3` bound
//! `tests/merge_streaming.rs` pins.

use std::io::Write as _;
use std::time::Instant;

use approx_hist::{
    Estimator, EstimatorBuilder, GreedyMerging, MaintenancePolicy, Signal, Synopsis, SynopsisStore,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const K: usize = 16;
const SEED: u64 = 2015;

fn fast() -> bool {
    std::env::var("HIST_BENCH_MAINT_FAST").is_ok()
}

fn seeded_signal(n: usize) -> Signal {
    let mut rng = StdRng::seed_from_u64(SEED);
    let plateau = (n / 32).max(1);
    let values: Vec<f64> =
        (0..n).map(|i| ((i / plateau) % 4) as f64 * 3.0 + 1.0 + rng.gen_range(0.0..0.4)).collect();
    Signal::from_dense(values).expect("finite signal")
}

fn estimator() -> GreedyMerging {
    GreedyMerging::new(EstimatorBuilder::new(K).seed(SEED))
}

/// One regime's measured ingest: merge wall time, refit wall time and count,
/// and the final served synopsis.
struct RegimeRun {
    merge_s: f64,
    refit_s: f64,
    refits: u64,
    merges: u64,
    final_epoch: u64,
    /// Lifetime sum of per-merge drift bounds (never reset by refits).
    drift_bound_total: f64,
    served: Synopsis,
}

/// Ingests every chunk into a fresh store under `policy` (or none), running
/// each due refit inline so its cost is attributed to the regime that
/// incurred it.
fn run_regime(chunks: &[Synopsis], budget: usize, policy: Option<MaintenancePolicy>) -> RegimeRun {
    let store = SynopsisStore::new();
    store.set_maintenance(policy).expect("valid policy");
    let (mut merge_s, mut refit_s) = (0.0f64, 0.0f64);
    for chunk in chunks {
        let start = Instant::now();
        store.update_merge(chunk, budget).expect("merge");
        merge_s += start.elapsed().as_secs_f64();
        if store.try_begin_refit() {
            let start = Instant::now();
            store.run_refit().expect("refit");
            refit_s += start.elapsed().as_secs_f64();
        }
    }
    let stats = store.maintenance_stats();
    RegimeRun {
        merge_s,
        refit_s,
        refits: stats.refits,
        merges: stats.merges,
        final_epoch: store.epoch(),
        drift_bound_total: stats.total_error,
        served: store.snapshot().expect("served").synopsis().as_ref().clone(),
    }
}

fn regime_json(name: &str, run: &RegimeRun, signal: &Signal, direct_err: f64) -> String {
    let served_err = run.served.l2_error(signal).expect("served error");
    let updates = (run.merges + 1).max(1);
    format!(
        r#"  "{name}": {{
    "merges": {merges},
    "refits": {refits},
    "final_epoch": {epoch},
    "merge_s_total": {merge_s:.6},
    "per_update_merge_us": {per_update:.3},
    "refit_s_total": {refit_s:.6},
    "drift_bound_total": {drift:.6},
    "served_l2_error": {served_err:.6},
    "error_vs_direct_ratio": {ratio:.4}
  }}"#,
        merges = run.merges,
        refits = run.refits,
        epoch = run.final_epoch,
        merge_s = run.merge_s,
        per_update = 1e6 * run.merge_s / updates as f64,
        refit_s = run.refit_s,
        drift = run.drift_bound_total,
        ratio = served_err / direct_err.max(1e-12),
    )
}

fn main() {
    let (n, num_chunks) = if fast() { (1 << 14, 64) } else { (1 << 17, 256) };
    let budget = 2 * K + 1;
    let signal = seeded_signal(n);
    let chunk_len = n / num_chunks;
    println!("maintenance: n = {n}, k = {K}, {num_chunks} chunks of {chunk_len}");

    // Pre-fit every chunk: the serving layer ingests synopses.
    let values = signal.dense_values();
    let chunks: Vec<Synopsis> = values
        .chunks(chunk_len)
        .map(|c| estimator().fit(&Signal::from_slice(c).expect("chunk")).expect("chunk fit"))
        .collect();

    // The direct fit of the whole stream: the accuracy yardstick.
    let start = Instant::now();
    let direct = estimator().fit(&signal).expect("direct fit");
    let direct_fit_s = start.elapsed().as_secs_f64();
    let direct_err = direct.l2_error(&signal).expect("direct error");

    let merge_only = run_regime(&chunks, budget, None);

    // The policy regime, calibrated from the measured drift: a budget of an
    // eighth of the unmaintained chain's total drift bound trips a handful
    // of refits over the run, at least 8 merges apart.
    let error_budget = (merge_only.drift_bound_total / 8.0).max(1e-9);
    let policy = MaintenancePolicy::new(error_budget, budget).min_interval(8);
    let with_policy = run_regime(&chunks, budget, Some(policy));

    // The hair-trigger upper bound: due on every merge.
    let every_update = MaintenancePolicy::new(1e-12, budget).min_interval(1);
    let refit_every = run_regime(&chunks, budget, Some(every_update));

    let json = format!(
        r#"{{
  "config": {{
    "n": {n},
    "k": {K},
    "chunks": {num_chunks},
    "chunk_len": {chunk_len},
    "merge_budget": {budget},
    "seed": {SEED},
    "error_budget": {error_budget:.6},
    "fast": {fast}
  }},
  "direct": {{
    "fit_s": {direct_fit_s:.6},
    "l2_error": {direct_err:.6}
  }},
{merge_only},
{with_policy},
{refit_every}
}}
"#,
        fast = fast(),
        merge_only = regime_json("merge_only", &merge_only, &signal, direct_err),
        with_policy = regime_json("policy", &with_policy, &signal, direct_err),
        refit_every = regime_json("refit_every_update", &refit_every, &signal, direct_err),
    );
    print!("{json}");

    let path =
        std::env::var("HIST_BENCH_MAINT_OUT").unwrap_or_else(|_| "BENCH_maintenance.json".into());
    let mut file = std::fs::File::create(&path).expect("writable output path");
    file.write_all(json.as_bytes()).expect("write BENCH_maintenance.json");
    println!("json written to {path}");

    // Sanity gates, after the JSON survives for debugging: the policy regime
    // must actually have refitted, fewer times than the hair trigger, and
    // its served error must stay within the committed C = 3 bound of the
    // direct fit — the constant `tests/merge_streaming.rs` pins.
    assert!(with_policy.refits >= 1, "the policy never tripped — retune the error budget");
    assert!(
        with_policy.refits < refit_every.refits,
        "the policy must amortize refits below the every-update bound"
    );
    let policy_err = with_policy.served.l2_error(&signal).expect("policy error");
    let slack = 1e-6 * signal.l2_norm_squared().sqrt().max(1.0);
    assert!(
        policy_err <= 3.0 * direct_err + slack,
        "maintained serving fell outside the C = 3 bound: {policy_err} vs direct {direct_err}"
    );
}
