//! Regenerates Table 1 of the paper: offline histogram approximation on the
//! `hist`, `poly` and `dow` data sets with `exactdp`, `merging`, `merging2`,
//! `fastmerging`, `fastmerging2` and `dual`, all dispatched through the
//! unified `Estimator` trait.
//!
//! Usage:
//! ```text
//! cargo run --release -p hist-bench --bin table1 [-- --paper-scale] [--naive-dp] [--all-baselines]
//! ```
//! `--paper-scale` uses the full `dow` series (`n = 16384`); `--naive-dp` times
//! the naive `O(n²k)` DP on every data set (slow at paper scale); by default
//! the pruned exact DP is used on `dow` (identical optimum, practical time).
//! `--all-baselines` adds the extra baselines (`gks`, equi-width, equi-depth,
//! greedy splitting) to every data set.

use hist_bench::offline::{
    extra_baseline_estimators, run_offline, table1_datasets, table1_estimators,
};
use hist_bench::report::{emit, fmt_float};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let paper_scale = args.iter().any(|a| a == "--paper-scale");
    let naive_dp = args.iter().any(|a| a == "--naive-dp");
    let all_baselines = args.iter().any(|a| a == "--all-baselines");

    println!("Table 1 — offline histogram approximation");
    println!(
        "(dow size: {}, exact DP: {})",
        if paper_scale { "16384 (paper scale)" } else { "4096 (use --paper-scale for 16384)" },
        if naive_dp { "naive O(n²k) everywhere" } else { "naive on small sets, pruned on dow" },
    );

    for spec in table1_datasets(paper_scale) {
        let naive = naive_dp || spec.values.len() <= 4_096;
        let mut estimators = table1_estimators(spec.k, naive);
        if all_baselines {
            estimators.extend(extra_baseline_estimators(spec.k));
        }
        let results = run_offline(&spec.values, &estimators);
        let rows: Vec<Vec<String>> = results
            .iter()
            .map(|r| {
                vec![
                    r.algorithm.clone(),
                    r.pieces.to_string(),
                    fmt_float(r.error),
                    fmt_float(r.relative_error),
                    fmt_float(r.time_ms),
                    fmt_float(r.relative_time),
                ]
            })
            .collect();
        emit(
            &format!("{} (n = {}, k = {})", spec.name, spec.values.len(), spec.k),
            &format!("table1_{}.csv", spec.name),
            &["algorithm", "pieces", "l2_error", "relative_error", "time_ms", "relative_time"],
            &rows,
        )
        .expect("writing the CSV succeeds");
    }
}
