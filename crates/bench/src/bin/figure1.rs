//! Regenerates the Figure 1 data sets (`hist`, `poly`, `dow`) and writes them
//! as CSV so they can be plotted alongside the paper's figure.
//!
//! Usage:
//! ```text
//! cargo run --release -p hist-bench --bin figure1 [-- --paper-scale]
//! ```

use hist_bench::offline::figure1;
use hist_bench::report::{emit, fmt_float};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let paper_scale = args.iter().any(|a| a == "--paper-scale");

    println!("Figure 1 — evaluation data sets");
    for (name, values) in figure1(paper_scale) {
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let summary = vec![vec![
            name.clone(),
            values.len().to_string(),
            fmt_float(min),
            fmt_float(mean),
            fmt_float(max),
        ]];
        emit(
            &format!("{name} summary"),
            &format!("figure1_{name}_summary.csv"),
            &["dataset", "n", "min", "mean", "max"],
            &summary,
        )
        .expect("writing the summary CSV succeeds");

        let rows: Vec<Vec<String>> =
            values.iter().enumerate().map(|(i, v)| vec![i.to_string(), format!("{v}")]).collect();
        let path = hist_bench::report::write_csv(
            &format!("figure1_{name}.csv"),
            &["index", "value"],
            &rows,
        )
        .expect("writing the data CSV succeeds");
        println!("(full series written to {})", path.display());
    }
}
