//! The Theorem 2.2 demo: one run of the multi-scale algorithm traces the whole
//! Pareto curve between histogram size and error; each selected level is
//! compared against the exact optimum `opt_k` (the guarantee is a ratio ≤ 2).
//!
//! Usage:
//! ```text
//! cargo run --release -p hist-bench --bin pareto [-- --paper-scale]
//! ```

use hist_bench::pareto::{default_ks, pareto_curve, pareto_dataset, pareto_experiment};
use hist_bench::report::{emit, fmt_float};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let paper_scale = args.iter().any(|a| a == "--paper-scale");
    let values = pareto_dataset(paper_scale);

    println!("Theorem 2.2 — multi-scale histogram construction on dow (n = {})", values.len());

    let rows: Vec<Vec<String>> = pareto_experiment(&values, &default_ks())
        .iter()
        .map(|row| {
            vec![
                row.k.to_string(),
                row.pieces.to_string(),
                fmt_float(row.error),
                fmt_float(row.opt_k),
                fmt_float(row.ratio),
            ]
        })
        .collect();
    emit(
        "level selected for each k vs the exact optimum",
        "pareto_guarantee.csv",
        &["k", "pieces", "l2_error", "opt_k", "ratio"],
        &rows,
    )
    .expect("writing the CSV succeeds");

    let curve_rows: Vec<Vec<String>> = pareto_curve(&values)
        .iter()
        .map(|(pieces, error)| vec![pieces.to_string(), fmt_float(*error)])
        .collect();
    emit(
        "full Pareto curve (one row per hierarchy level)",
        "pareto_curve.csv",
        &["pieces", "l2_error"],
        &curve_rows,
    )
    .expect("writing the CSV succeeds");
}
