//! Seeded serving benchmark: single- vs multi-thread construction and query
//! throughput for the parallel/serving subsystem, written as JSON to
//! `BENCH_serve.json` at the workspace root (override with
//! `HIST_BENCH_SERVE_OUT`).
//!
//! Construction compares the sequential `ChunkedFitter` against
//! `ParallelChunkedFitter` at 1/2/4/8 worker threads on an `n = 2^20` seeded
//! step signal, and verifies the parallel fit is bit-identical to the
//! sequential one. Queries compare direct `mass_batch`/`quantile_batch`
//! against the sharded `QueryExecutor` at the same thread counts.
//!
//! Two speedup figures are reported for each side, and the JSON names the
//! basis of each explicitly:
//!
//! * `wall_clock_*` — measured end-to-end wall time on *this* host. Only
//!   meaningful when the host actually exposes ≥ t CPUs to the process.
//! * `makespan_*` — the critical-path schedule length computed from the
//!   *measured* per-chunk (resp. per-shard) times under the fitter's actual
//!   contiguous-block assignment: `max` over workers of their summed work,
//!   plus the sequential merge/recombine tail. This is what the wall clock
//!   converges to on a host with enough CPUs, and is the honest scalability
//!   number when the benchmark machine is smaller than the deployment target.

use std::io::Write as _;
use std::sync::Arc;

use approx_hist::stream::merge_budget;
use approx_hist::{
    ChunkedFitter, Estimator, EstimatorBuilder, GreedyMerging, Interval, ParallelChunkedFitter,
    QueryExecutor, Signal, Synopsis,
};
use hist_bench::timing::time_algorithm;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 1 << 20;
const K: usize = 64;
const CHUNKS: usize = 64;
const SEED: u64 = 2015;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const QUERIES: usize = 1 << 17;

fn seeded_signal() -> Signal {
    let mut rng = StdRng::seed_from_u64(SEED);
    let values: Vec<f64> = (0..N)
        .map(|i| ((i / (N / 32)) % 4) as f64 * 3.0 + 1.0 + rng.gen_range(0.0..0.25))
        .collect();
    Signal::from_dense(values).expect("finite signal")
}

fn inner() -> Box<dyn Estimator> {
    Box::new(GreedyMerging::new(EstimatorBuilder::new(K)))
}

/// Seconds per run of `f`, averaged adaptively over repetitions.
fn seconds_of<T>(mut f: impl FnMut() -> T) -> f64 {
    time_algorithm(&mut f).1
}

/// Critical-path schedule length for `work` items distributed to `threads`
/// workers in contiguous blocks of `ceil(len / threads)` — the assignment
/// `ParallelChunkedFitter` and `QueryExecutor` actually use — plus a
/// sequential `tail` (tree merge / result recombination).
fn makespan(work: &[f64], threads: usize, tail: f64) -> f64 {
    let block = work.len().div_ceil(threads.max(1));
    work.chunks(block).map(|b| b.iter().sum::<f64>()).fold(0.0f64, f64::max) + tail
}

fn json_map(pairs: &[(usize, f64)]) -> String {
    let entries: Vec<String> = pairs.iter().map(|(t, v)| format!("\"{t}\": {v:.6}")).collect();
    format!("{{{}}}", entries.join(", "))
}

fn main() {
    let signal = seeded_signal();
    let chunk_len = N / CHUNKS;
    println!("serve_throughput: n = {N}, k = {K}, {CHUNKS} chunks of {chunk_len}");

    // --- Construction: sequential chunked baseline.
    let sequential_fitter = ChunkedFitter::new(inner(), K).with_chunk_len(chunk_len);
    let (sequential_fit, sequential_s) = time_algorithm(|| sequential_fitter.fit(&signal).unwrap());
    println!("construction: sequential chunked fit {sequential_s:.3}s");

    // Per-chunk fit times + merge tail, for the critical-path model.
    let chunk_times: Vec<f64> = signal
        .dense_values()
        .chunks(chunk_len)
        .map(|chunk| {
            let chunk = Signal::from_slice(chunk).unwrap();
            let estimator = inner();
            seconds_of(|| estimator.fit(&chunk).unwrap())
        })
        .collect();
    let per_chunk_total: f64 = chunk_times.iter().sum();
    let chunk_synopses = sequential_fitter.fit_chunks(&signal).unwrap();
    let merge_s = seconds_of(|| {
        approx_hist::stream::tree_merge(chunk_synopses.clone(), merge_budget(K)).unwrap()
    });

    // Parallel construction at each thread count: wall clock + model, and the
    // bit-identity check that makes the speedup meaningful.
    let mut wall = Vec::new();
    let mut model = Vec::new();
    let mut identical = true;
    for threads in THREAD_COUNTS {
        let fitter =
            ParallelChunkedFitter::new(inner(), K).with_chunk_len(chunk_len).with_threads(threads);
        let (fit, wall_s) = time_algorithm(|| fitter.fit(&signal).unwrap());
        identical &= fit.model() == sequential_fit.model();
        let model_s = makespan(&chunk_times, threads, merge_s);
        println!(
            "construction: {threads} thread(s) wall {wall_s:.3}s | makespan model {model_s:.3}s"
        );
        wall.push((threads, wall_s));
        model.push((threads, model_s));
    }
    let sequential_model_s = per_chunk_total + merge_s;
    let wall_4 = wall.iter().find(|(t, _)| *t == 4).unwrap().1;
    let model_4 = model.iter().find(|(t, _)| *t == 4).unwrap().1;

    // --- Queries: direct batch vs sharded executor.
    let synopsis: Arc<Synopsis> = sequential_fit.into_shared();
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xBA7C);
    let ranges: Vec<Interval> = (0..QUERIES)
        .map(|_| {
            let mut ends = [rng.gen_range(0..N), rng.gen_range(0..N)];
            ends.sort_unstable();
            Interval::new(ends[0], ends[1]).unwrap()
        })
        .collect();
    let ps: Vec<f64> = (0..QUERIES).map(|_| rng.gen_range(0.0..=1.0)).collect();

    let direct_mass_s = seconds_of(|| synopsis.mass_batch(&ranges).unwrap());
    let direct_quantile_s = seconds_of(|| synopsis.quantile_batch(&ps).unwrap());
    let direct_s = direct_mass_s + direct_quantile_s;
    println!(
        "queries: direct {} x2 batches {direct_s:.3}s ({:.0} q/s)",
        QUERIES,
        2.0 * QUERIES as f64 / direct_s
    );

    let mut query_wall = Vec::new();
    let mut query_model = Vec::new();
    for threads in THREAD_COUNTS {
        let executor = QueryExecutor::new(threads);
        let wall_s = seconds_of(|| {
            executor.mass_batch(&synopsis, &ranges).unwrap();
            executor.quantile_batch(&synopsis, &ps).unwrap();
        });
        // Per-shard times under the executor's contiguous slicing, run
        // sequentially: the model is the slowest shard (recombination is a
        // concatenation, folded into the measured shard loop here).
        let shard_len = QUERIES.div_ceil(threads);
        let mass_shards: Vec<f64> = ranges
            .chunks(shard_len)
            .map(|shard| seconds_of(|| synopsis.mass_batch(shard).unwrap()))
            .collect();
        let quantile_shards: Vec<f64> = ps
            .chunks(shard_len)
            .map(|shard| seconds_of(|| synopsis.quantile_batch(shard).unwrap()))
            .collect();
        let model_s = mass_shards.iter().fold(0.0f64, |a, &b| a.max(b))
            + quantile_shards.iter().fold(0.0f64, |a, &b| a.max(b));
        println!("queries: {threads} thread(s) wall {wall_s:.3}s | makespan model {model_s:.3}s");
        query_wall.push((threads, wall_s));
        query_model.push((threads, model_s));
    }
    let query_wall_4 = query_wall.iter().find(|(t, _)| *t == 4).unwrap().1;
    let query_model_4 = query_model.iter().find(|(t, _)| *t == 4).unwrap().1;

    let host = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let (speedup_4, basis) = if host >= 4 {
        (sequential_s / wall_4, "wall-clock (host exposes >= 4 CPUs)")
    } else {
        (
            sequential_model_s / model_4,
            "critical-path makespan from measured per-chunk fit times \
             (host exposes fewer than 4 CPUs; wall-clock cannot parallelize here \
             and is reported separately)",
        )
    };
    println!("speedup at 4 threads: {speedup_4:.2}x [{basis}]");
    println!("determinism: parallel fit bit-identical to sequential: {identical}");

    let json = format!(
        r#"{{
  "bench": "serve_throughput",
  "n": {N},
  "k": {K},
  "chunks": {CHUNKS},
  "seed": {SEED},
  "host_parallelism": {host},
  "construction": {{
    "sequential_chunked_wall_s": {sequential_s:.6},
    "sequential_model_s": {sequential_model_s:.6},
    "per_chunk_fit_total_s": {per_chunk_total:.6},
    "tree_merge_s": {merge_s:.6},
    "parallel_wall_s": {wall_map},
    "parallel_makespan_s": {model_map},
    "wall_clock_speedup_4_threads": {wall_speedup:.4},
    "makespan_speedup_4_threads": {model_speedup:.4},
    "speedup_4_threads": {speedup_4:.4},
    "speedup_basis": "{basis}"
  }},
  "query": {{
    "batch_queries": {total_queries},
    "direct_batch_s": {direct_s:.6},
    "direct_throughput_qps": {direct_qps:.1},
    "executor_wall_s": {query_wall_map},
    "executor_makespan_s": {query_model_map},
    "wall_clock_speedup_4_threads": {query_wall_speedup:.4},
    "makespan_speedup_4_threads": {query_model_speedup:.4}
  }},
  "determinism": {{
    "parallel_fit_bit_identical_to_sequential": {identical}
  }}
}}
"#,
        wall_map = json_map(&wall),
        model_map = json_map(&model),
        wall_speedup = sequential_s / wall_4,
        model_speedup = sequential_model_s / model_4,
        total_queries = 2 * QUERIES,
        direct_qps = 2.0 * QUERIES as f64 / direct_s,
        query_wall_map = json_map(&query_wall),
        query_model_map = json_map(&query_model),
        query_wall_speedup = direct_s / query_wall_4,
        query_model_speedup = direct_s / query_model_4,
    );

    let path = std::env::var("HIST_BENCH_SERVE_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());
    let mut file = std::fs::File::create(&path).expect("writable output path");
    file.write_all(json.as_bytes()).expect("write BENCH_serve.json");
    println!("json written to {path}");
    // Fail the run (after writing the JSON, so the artifact survives for
    // debugging) if the parallel fit ever diverged: this bin doubles as the
    // large-n determinism smoke check in CI.
    assert!(identical, "parallel fit diverged from the sequential fit at n = {N}");
}
