//! Live telemetry pipeline benchmark: sustained ingest throughput while the
//! store is concurrently served over the wire, plus the publish-cadence
//! (freshness) vs served-accuracy trade-off, written as JSON to
//! `BENCH_pipeline.json` at the workspace root (override with
//! `HIST_BENCH_PIPE_OUT`). Set `HIST_BENCH_PIPE_FAST=1` for a seconds-long
//! smoke run (CI uses it).
//!
//! Two measurements:
//!
//! * `sustained` — four metric lanes on one background ingest thread
//!   ([`TelemetryPipeline::spawn`]) publishing into a shared [`StoreMap`]
//!   behind a live [`HistServer`], while two client threads hammer
//!   p50/p99/p999 quantile batches the whole time. Reported: events/s
//!   sustained by the ingester *while serving*, epochs minted, and queries/s
//!   answered concurrently.
//! * `cadence` — one lane ingesting the same stream at three publish
//!   cadences (chunk lengths). The chunk length *is* the freshness knob: the
//!   served synopsis lags the stream by at most one unpublished chunk, so
//!   shorter chunks serve fresher answers but pay more merges (and merge
//!   error) per event. Reported per cadence: worst-case staleness in events,
//!   synchronous ingest rate, final served L2 error against the exact
//!   stream prefix, and its ratio to the direct `k`-piece fit — gated by the
//!   same `C = 3` bound `tests/merge_streaming.rs` pins.

use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use approx_hist::datasets::gaussian_mixture;
use approx_hist::{
    Estimator, EstimatorBuilder, EventSource, GreedyMerging, HistClient, HistServer,
    MaintenancePolicy, MetricPipeline, ServerConfig, ServerMode, Signal, StoreMap,
    TelemetryPipeline,
};

const K: usize = 12;
const SEED: u64 = 2015;
const PS: [f64; 3] = [0.5, 0.99, 0.999];

fn fast() -> bool {
    std::env::var("HIST_BENCH_PIPE_FAST").is_ok()
}

fn estimator() -> Box<GreedyMerging> {
    Box::new(GreedyMerging::new(EstimatorBuilder::new(K).seed(SEED)))
}

/// The smooth diurnal-bulk block the cadence sweep streams (cycled): two
/// Gaussian modes over a positive baseline, so fit quality — not spike
/// placement — governs the served error.
fn smooth_block(len: usize) -> Vec<f64> {
    gaussian_mixture(len, &[(0.6, 0.3, 0.12), (0.4, 0.7, 0.15)])
        .iter()
        .map(|&m| 60.0 + 120.0 * m * len as f64)
        .collect()
}

struct SustainedRun {
    lanes: usize,
    events: u64,
    publishes: u64,
    queries: u64,
    elapsed_s: f64,
}

/// Four lanes on a background ingest thread behind a live server, two query
/// clients hammering the whole time.
fn run_sustained(duration: Duration, chunk_len: usize) -> SustainedRun {
    const LANES: usize = 4;
    let map = Arc::new(StoreMap::new());
    map.enable_maintenance(MaintenancePolicy::new(1e6, 2 * K + 1).min_interval(8), 1)
        .expect("maintenance policy");

    let mut pipeline = TelemetryPipeline::new(Arc::clone(&map)).with_batch(chunk_len);
    let mut keys = Vec::new();
    for lane in 0..LANES {
        let key = format!("svc/metric{lane}");
        let source = EventSource::synthetic(&key, SEED + lane as u64, 4 * chunk_len)
            .expect("synthetic source");
        let metric = MetricPipeline::cumulative(&key, estimator(), K, chunk_len).expect("lane");
        pipeline.add_lane(source, metric);
        keys.push(key);
    }
    // Prime every key so query threads never race the first publish.
    pipeline.run_until(chunk_len).expect("priming chunk");

    let server = HistServer::bind(
        "127.0.0.1:0",
        Arc::clone(&map),
        ServerConfig {
            mode: ServerMode::Evented,
            connection_threads: 2,
            ..ServerConfig::default()
        },
    )
    .expect("ephemeral bind");
    let addr = server.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    let queries = Arc::new(AtomicU64::new(0));
    let readers: Vec<_> = (0..2)
        .map(|reader| {
            let (stop, queries) = (Arc::clone(&stop), Arc::clone(&queries));
            let key = keys[reader % LANES].clone();
            std::thread::spawn(move || {
                let mut client =
                    HistClient::connect(addr).expect("connect").with_key(&key).expect("key");
                while !stop.load(Ordering::Relaxed) {
                    client.quantile_batch(&PS).expect("served quantiles");
                    queries.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    let started = Instant::now();
    let handle = pipeline.spawn();
    std::thread::sleep(duration);
    let pipeline = handle.join().expect("ingest thread");
    let elapsed_s = started.elapsed().as_secs_f64();

    stop.store(true, Ordering::Relaxed);
    for reader in readers {
        reader.join().expect("query thread");
    }

    let publishes = pipeline.lanes().iter().map(|(_, lane)| lane.publishes()).sum::<u64>();
    let events = pipeline.lanes().iter().map(|(_, lane)| lane.consumed() as u64).sum::<u64>();
    SustainedRun {
        lanes: LANES,
        events,
        publishes,
        queries: queries.load(Ordering::Relaxed),
        elapsed_s,
    }
}

struct CadenceRun {
    chunk_len: usize,
    epochs: u64,
    ingest_events_per_s: f64,
    served_l2_error: f64,
    ratio_vs_direct: f64,
}

/// One lane, one cadence: ingest `n` events synchronously, then measure the
/// served synopsis against the exact prefix.
fn run_cadence(block: &[f64], n: usize, chunk_len: usize, direct_err: f64) -> CadenceRun {
    let key = "svc/latency";
    let map = Arc::new(StoreMap::new());
    let source = EventSource::from_block(key, block.to_vec()).expect("source");
    let lane = MetricPipeline::cumulative(key, estimator(), K, chunk_len).expect("lane");
    let mut pipeline = TelemetryPipeline::new(Arc::clone(&map)).with_batch(chunk_len);
    pipeline.add_lane(source, lane);

    let started = Instant::now();
    let report = pipeline.run_until(n).expect("ingest");
    let elapsed = started.elapsed().as_secs_f64();

    let snapshot = map.snapshot(key).expect("published");
    let prefix: Vec<f64> = (0..n).map(|i| block[i % block.len()]).collect();
    let signal = Signal::from_dense(prefix).expect("signal");
    let served_l2_error = snapshot.synopsis().l2_error(&signal).expect("served error");
    CadenceRun {
        chunk_len,
        epochs: report.publishes,
        ingest_events_per_s: if elapsed > 0.0 { n as f64 / elapsed } else { f64::INFINITY },
        served_l2_error,
        ratio_vs_direct: served_l2_error / direct_err.max(1e-12),
    }
}

fn main() {
    let (duration, sustained_chunk, n, cadences) = if fast() {
        (Duration::from_millis(400), 1_024, 1 << 13, [128usize, 512, 2_048])
    } else {
        (Duration::from_secs(3), 1_024, 1 << 16, [256usize, 1_024, 4_096])
    };
    println!("pipeline: k = {K}, sustained {duration:?}, cadence n = {n}");

    let sustained = run_sustained(duration, sustained_chunk);

    let block = smooth_block(1 << 12);
    let signal =
        Signal::from_dense((0..n).map(|i| block[i % block.len()]).collect()).expect("signal");
    let direct_err =
        estimator().fit(&signal).expect("direct fit").l2_error(&signal).expect("direct error");
    let cadence_runs: Vec<CadenceRun> =
        cadences.iter().map(|&c| run_cadence(&block, n, c, direct_err)).collect();

    let cadence_json: Vec<String> = cadence_runs
        .iter()
        .map(|run| {
            format!(
                r#"    {{
      "chunk_len": {chunk},
      "epochs": {epochs},
      "staleness_max_events": {chunk},
      "ingest_events_per_s": {rate:.1},
      "served_l2_error": {err:.6},
      "error_vs_direct_ratio": {ratio:.4}
    }}"#,
                chunk = run.chunk_len,
                epochs = run.epochs,
                rate = run.ingest_events_per_s,
                err = run.served_l2_error,
                ratio = run.ratio_vs_direct,
            )
        })
        .collect();

    let json = format!(
        r#"{{
  "config": {{
    "k": {K},
    "merge_budget": {budget},
    "seed": {SEED},
    "sustained_chunk_len": {sustained_chunk},
    "cadence_n": {n},
    "fast": {fast}
  }},
  "sustained": {{
    "lanes": {lanes},
    "events": {events},
    "events_per_s": {events_per_s:.1},
    "publishes": {publishes},
    "queries": {queries},
    "queries_per_s": {queries_per_s:.1},
    "elapsed_s": {elapsed:.3}
  }},
  "cadence": [
{cadence}
  ],
  "direct_l2_error": {direct_err:.6}
}}
"#,
        budget = 2 * K + 1,
        fast = fast(),
        lanes = sustained.lanes,
        events = sustained.events,
        events_per_s = sustained.events as f64 / sustained.elapsed_s,
        publishes = sustained.publishes,
        queries = sustained.queries,
        queries_per_s = sustained.queries as f64 / sustained.elapsed_s,
        elapsed = sustained.elapsed_s,
        cadence = cadence_json.join(",\n"),
    );
    print!("{json}");

    let path =
        std::env::var("HIST_BENCH_PIPE_OUT").unwrap_or_else(|_| "BENCH_pipeline.json".into());
    let mut file = std::fs::File::create(&path).expect("writable output path");
    file.write_all(json.as_bytes()).expect("write BENCH_pipeline.json");
    println!("json written to {path}");

    // Sanity gates, after the JSON survives for debugging.
    assert!(sustained.events > 0 && sustained.publishes > 0, "the ingester made no progress");
    assert!(sustained.queries > 0, "no query was answered while ingesting — serving was starved");
    let slack = 1e-6 * signal.l2_norm_squared().sqrt().max(1.0);
    for run in &cadence_runs {
        assert!(
            run.served_l2_error <= 3.0 * direct_err + slack,
            "cadence {}: served error {} outside the C = 3 bound of direct {}",
            run.chunk_len,
            run.served_l2_error,
            direct_err
        );
    }
}
