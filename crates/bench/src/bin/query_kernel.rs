//! Flat-vs-reference query-kernel microbench, written as JSON to
//! `BENCH_query.json` at the workspace root (override with
//! `HIST_BENCH_QUERY_OUT`).
//!
//! Measures single-thread batch query throughput of the flat
//! structure-of-arrays kernels (`cdf_batch`/`quantile_batch`/`mass_batch`)
//! against the retained pre-flat reference kernels (`cdf_ref` mapped over the
//! batch, `quantile_batch_ref`, `mass_batch_ref`) on a merged histogram
//! synopsis — the shape every serving snapshot has, since merges always
//! produce histograms. The synopsis is fitted by `GreedyMerging` on a seeded
//! `n = 2^20` step signal at `k = 64`, queried in batches of 4096 (the
//! serving layer's bulk shape).
//!
//! Before any timing, every op's flat output is checked bit-for-bit against
//! its reference output over the full query set — the run aborts (after
//! writing nothing) on the first divergence, so a reported speedup always
//! describes a kernel that answers identically.

use std::io::Write as _;

use approx_hist::{Estimator, EstimatorBuilder, GreedyMerging, Interval, Signal, Synopsis};
use hist_bench::timing::time_algorithm;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 1 << 20;
const K: usize = 64;
const SEED: u64 = 2015;
const BATCH: usize = 4096;
const BATCHES: usize = 16;
/// Widest mass-query range: `N/64` indices, ≈1.6 % selectivity. Range-count
/// estimates are selective in practice; near-full-domain ranges would spend
/// both kernels' time in the (shared, bit-identical) per-piece overlap walk
/// and measure the signal fit instead of the query kernel.
const MAX_RANGE_WIDTH: usize = N / 64;

fn seeded_signal() -> Signal {
    let mut rng = StdRng::seed_from_u64(SEED);
    let values: Vec<f64> = (0..N)
        .map(|i| ((i / (N / 32)) % 4) as f64 * 3.0 + 1.0 + rng.gen_range(0.0..0.25))
        .collect();
    Signal::from_dense(values).expect("finite signal")
}

const ROUNDS: usize = 7;

/// One op's measurement: queries/s for both kernels over the same batches.
struct OpResult {
    op: &'static str,
    ref_qps: f64,
    flat_qps: f64,
}

impl OpResult {
    fn speedup(&self) -> f64 {
        self.flat_qps / self.ref_qps
    }
}

fn measure(op: &'static str, mut reference: impl FnMut(), mut flat: impl FnMut()) -> OpResult {
    let queries = (BATCH * BATCHES) as f64;
    // Interleave the kernels round by round and keep each side's best: on a
    // shared single-CPU box the clock and the neighbours drift on the scale
    // of one measurement window, so back-to-back rounds — not two disjoint
    // blocks — is what makes the pair comparable.
    let (mut ref_s, mut flat_s) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..ROUNDS {
        ref_s = ref_s.min(time_algorithm(&mut reference).1);
        flat_s = flat_s.min(time_algorithm(&mut flat).1);
    }
    let result = OpResult { op, ref_qps: queries / ref_s, flat_qps: queries / flat_s };
    println!(
        "{op}: ref {:.2} Mq/s | flat {:.2} Mq/s | speedup {:.2}x",
        result.ref_qps / 1e6,
        result.flat_qps / 1e6,
        result.speedup()
    );
    result
}

fn main() {
    let signal = seeded_signal();
    let estimator = GreedyMerging::new(EstimatorBuilder::new(K));
    let synopsis: Synopsis = estimator.fit(&signal).expect("seeded fit");
    let pieces = synopsis.num_pieces();
    println!("query_kernel: n = {N}, k = {K} ({pieces} pieces), {BATCHES} batches of {BATCH}");

    let mut rng = StdRng::seed_from_u64(SEED ^ 0x9E3779B97F4A7C15);
    let xs_batches: Vec<Vec<usize>> =
        (0..BATCHES).map(|_| (0..BATCH).map(|_| rng.gen_range(0..N)).collect()).collect();
    let ps_batches: Vec<Vec<f64>> =
        (0..BATCHES).map(|_| (0..BATCH).map(|_| rng.gen_range(0.0..=1.0)).collect()).collect();
    let range_batches: Vec<Vec<Interval>> = (0..BATCHES)
        .map(|_| {
            (0..BATCH)
                .map(|_| {
                    let start = rng.gen_range(0..N);
                    let end = (start + rng.gen_range(0..=MAX_RANGE_WIDTH)).min(N - 1);
                    Interval::new(start, end).expect("ordered ends")
                })
                .collect()
        })
        .collect();

    // --- Bit-identity gate: flat answers must equal reference answers
    // exactly before a speedup over them means anything.
    for xs in &xs_batches {
        let flat = synopsis.cdf_batch(xs).unwrap();
        for (&x, got) in xs.iter().zip(&flat) {
            assert_eq!(
                got.to_bits(),
                synopsis.cdf_ref(x).unwrap().to_bits(),
                "cdf diverged at x = {x}"
            );
        }
    }
    for ps in &ps_batches {
        assert_eq!(
            synopsis.quantile_batch(ps).unwrap(),
            synopsis.quantile_batch_ref(ps).unwrap(),
            "quantile_batch diverged"
        );
    }
    for ranges in &range_batches {
        let flat = synopsis.mass_batch(ranges).unwrap();
        let reference = synopsis.mass_batch_ref(ranges).unwrap();
        for ((range, a), b) in ranges.iter().zip(&flat).zip(&reference) {
            assert_eq!(a.to_bits(), b.to_bits(), "mass diverged on {range}");
        }
    }
    println!("bit-identity gate: all ops identical over {} queries/op", BATCH * BATCHES);

    // --- Throughput: whole batches per call, summed over the batch set.
    let results = [
        measure(
            "cdf_batch",
            || {
                for xs in &xs_batches {
                    let out: Result<Vec<f64>, _> =
                        xs.iter().map(|&x| synopsis.cdf_ref(x)).collect();
                    std::hint::black_box(out.unwrap());
                }
            },
            || {
                for xs in &xs_batches {
                    std::hint::black_box(synopsis.cdf_batch(xs).unwrap());
                }
            },
        ),
        measure(
            "quantile_batch",
            || {
                for ps in &ps_batches {
                    std::hint::black_box(synopsis.quantile_batch_ref(ps).unwrap());
                }
            },
            || {
                for ps in &ps_batches {
                    std::hint::black_box(synopsis.quantile_batch(ps).unwrap());
                }
            },
        ),
        measure(
            "mass_batch",
            || {
                for ranges in &range_batches {
                    std::hint::black_box(synopsis.mass_batch_ref(ranges).unwrap());
                }
            },
            || {
                for ranges in &range_batches {
                    std::hint::black_box(synopsis.mass_batch(ranges).unwrap());
                }
            },
        ),
    ];

    // Geometric mean across ops: the headline batch-kernel speedup.
    let batch_speedup =
        (results.iter().map(|r| r.speedup().ln()).sum::<f64>() / results.len() as f64).exp();
    println!("batch speedup (geomean over ops): {batch_speedup:.2}x");

    let ops_json: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{ \"op\": \"{}\", \"ref_qps\": {:.1}, \"flat_qps\": {:.1}, \"speedup\": {:.4} }}",
                r.op, r.ref_qps, r.flat_qps, r.speedup()
            )
        })
        .collect();
    let json = format!(
        r#"{{
  "bench": "query_kernel",
  "model": "histogram",
  "n": {N},
  "k": {K},
  "pieces": {pieces},
  "seed": {SEED},
  "batch": {BATCH},
  "batches": {BATCHES},
  "max_range_width": {MAX_RANGE_WIDTH},
  "bit_identical": true,
  "ops": [
{ops}
  ],
  "batch_speedup_geomean": {batch_speedup:.4}
}}
"#,
        ops = ops_json.join(",\n"),
    );

    let path = std::env::var("HIST_BENCH_QUERY_OUT").unwrap_or_else(|_| "BENCH_query.json".into());
    let mut file = std::fs::File::create(&path).expect("writable output path");
    file.write_all(json.as_bytes()).expect("write BENCH_query.json");
    println!("json written to {path}");
}
