//! The Theorem 2.3 demo: piecewise-polynomial approximation under a fixed
//! space budget `k·(d + 1)` — how much accuracy does each extra degree buy on
//! the `hist`, `poly` and `dow` signals?
//!
//! Usage:
//! ```text
//! cargo run --release -p hist-bench --bin poly_experiment
//! ```

use hist_bench::polyexp::{
    default_budgets, default_degrees, poly_experiment, poly_experiment_datasets,
};
use hist_bench::report::{emit, fmt_float};

fn main() {
    println!("Theorem 2.3 — piecewise polynomial approximation under a parameter budget");
    for (name, values) in poly_experiment_datasets() {
        let rows: Vec<Vec<String>> =
            poly_experiment(&values, &default_budgets(), &default_degrees())
                .iter()
                .map(|row| {
                    vec![
                        row.budget.to_string(),
                        row.degree.to_string(),
                        row.k.to_string(),
                        row.pieces.to_string(),
                        row.parameters.to_string(),
                        fmt_float(row.error),
                    ]
                })
                .collect();
        emit(
            &format!("{name} (n = {})", values.len()),
            &format!("poly_experiment_{name}.csv"),
            &["budget", "degree", "k", "pieces", "parameters", "l2_error"],
            &rows,
        )
        .expect("writing the CSV succeeds");
    }
}
