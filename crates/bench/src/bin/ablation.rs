//! Ablation experiments for the design choices called out in `DESIGN.md`:
//! the `δ`/`γ` trade-offs of Algorithm 1, pair merging versus aggressive group
//! merging, and the naive versus the pruned exact DP.
//!
//! Usage:
//! ```text
//! cargo run --release -p hist-bench --bin ablation [-- --paper-scale]
//! ```

use hist_bench::ablation::{exact_dp_comparison, merging_strategies, parameter_sweep};
use hist_bench::report::{emit, fmt_float};
use hist_datasets as datasets;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let paper_scale = args.iter().any(|a| a == "--paper-scale");
    let dow = if paper_scale {
        datasets::dow_dataset()
    } else {
        datasets::dow_dataset_with_length(4_096)
    };

    println!("Ablations (dow, n = {})", dow.len());

    // 1. δ / γ sweep of Algorithm 1.
    let sweep = parameter_sweep(&dow, 50, &[0.25, 1.0, 4.0, 1000.0], &[0.0, 1.0, 200.0]);
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|r| {
            vec![
                fmt_float(r.delta),
                fmt_float(r.gamma),
                r.pieces.to_string(),
                fmt_float(r.error),
                r.rounds.to_string(),
                fmt_float(r.time_ms),
            ]
        })
        .collect();
    emit(
        "Algorithm 1: δ / γ trade-offs (k = 50)",
        "ablation_delta_gamma.csv",
        &["delta", "gamma", "pieces", "l2_error", "rounds", "time_ms"],
        &rows,
    )
    .expect("writing the CSV succeeds");

    // 2. Pair merging vs aggressive group merging.
    let mut strategy_rows: Vec<Vec<String>> = Vec::new();
    for n in [1_024usize, 4_096, dow.len()] {
        let prefix = &dow[..n.min(dow.len())];
        for row in merging_strategies(prefix, 50) {
            strategy_rows.push(vec![
                row.strategy.clone(),
                row.n.to_string(),
                row.rounds.to_string(),
                fmt_float(row.error),
                fmt_float(row.time_ms),
            ]);
        }
    }
    emit(
        "merging vs fastmerging (k = 50)",
        "ablation_merging_strategy.csv",
        &["strategy", "n", "rounds", "l2_error", "time_ms"],
        &strategy_rows,
    )
    .expect("writing the CSV succeeds");

    // 3. Naive vs pruned exact DP.
    let mut dp_rows: Vec<Vec<String>> = Vec::new();
    for n in [512usize, 1_024, 2_048, 4_096] {
        let prefix = &dow[..n.min(dow.len())];
        for row in exact_dp_comparison(prefix, 50) {
            dp_rows.push(vec![
                row.implementation.clone(),
                row.n.to_string(),
                fmt_float(row.sse),
                fmt_float(row.time_ms),
            ]);
        }
    }
    emit(
        "exact DP: naive vs pruned (k = 50)",
        "ablation_exact_dp.csv",
        &["implementation", "n", "sse", "time_ms"],
        &dp_rows,
    )
    .expect("writing the CSV succeeds");
}
