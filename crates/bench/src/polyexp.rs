//! The piecewise-polynomial experiment (Theorem 2.3 / Corollary 4.1 demo):
//! for a fixed space budget `k·(d + 1)` (the number of real parameters of the
//! synopsis), how does the achieved error change with the per-piece degree `d`?
//!
//! The paper motivates piecewise polynomials as a strictly more expressive
//! synopsis for the same space; this experiment quantifies that claim on the
//! smooth `poly` and `dow` signals and on the piecewise-constant `hist` signal
//! (where degree 0 is expected to win). Fits run through the unified
//! [`PiecewisePoly`](approx_hist::PiecewisePoly) estimator.

use approx_hist::{Estimator, EstimatorBuilder, PiecewisePoly, Signal};
use hist_datasets as datasets;

/// One row of the experiment: a `(budget, degree)` combination.
#[derive(Debug, Clone, PartialEq)]
pub struct PolyExpRow {
    /// Space budget `k·(d + 1)` in parameters.
    pub budget: usize,
    /// Per-piece polynomial degree `d`.
    pub degree: usize,
    /// Number of pieces `k` requested (`budget / (d + 1)`).
    pub k: usize,
    /// Number of pieces actually produced.
    pub pieces: usize,
    /// Number of parameters actually used (`Σ_j (d_j + 1)`).
    pub parameters: usize,
    /// `ℓ₂` error of the fitted piecewise polynomial.
    pub error: f64,
}

/// Runs the budget-vs-degree sweep on one dense signal.
pub fn poly_experiment(values: &[f64], budgets: &[usize], degrees: &[usize]) -> Vec<PolyExpRow> {
    let signal = Signal::from_slice(values).expect("finite signal");
    let mut rows = Vec::with_capacity(budgets.len() * degrees.len());
    for &budget in budgets {
        for &degree in degrees {
            let k = (budget / (degree + 1)).max(1);
            // merging2-style parameterization: the output has ≈ k pieces.
            let estimator = PiecewisePoly::new(EstimatorBuilder::new(k.div_ceil(2)).degree(degree));
            let synopsis = estimator.fit(&signal).expect("valid signal");
            rows.push(PolyExpRow {
                budget,
                degree,
                k,
                pieces: synopsis.num_pieces(),
                parameters: synopsis
                    .polynomial()
                    .expect("piecewise-poly synopsis")
                    .parameter_count(),
                error: synopsis.l2_error(&signal).expect("matching domain"),
            });
        }
    }
    rows
}

/// The default data sets of the experiment: `(name, signal)` for `hist`,
/// `poly` and a truncated `dow`.
pub fn poly_experiment_datasets() -> Vec<(String, Vec<f64>)> {
    vec![
        ("hist".to_string(), datasets::hist_dataset()),
        ("poly".to_string(), datasets::poly_dataset()),
        ("dow".to_string(), datasets::dow_dataset_with_length(4_096)),
    ]
}

/// Default space budgets (in parameters) swept by the experiment.
pub fn default_budgets() -> Vec<usize> {
    vec![12, 24, 48, 96]
}

/// Default per-piece degrees swept by the experiment.
pub fn default_degrees() -> Vec<usize> {
    vec![0, 1, 2, 3]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn higher_degree_wins_on_smooth_signals() {
        let values = datasets::poly_dataset();
        let rows = poly_experiment(&values, &[48], &[0, 2]);
        assert_eq!(rows.len(), 2);
        let flat = rows.iter().find(|r| r.degree == 0).unwrap();
        let quad = rows.iter().find(|r| r.degree == 2).unwrap();
        assert!(
            quad.error < flat.error,
            "same budget: degree 2 ({}) should beat degree 0 ({}) on the smooth poly signal",
            quad.error,
            flat.error
        );
    }

    #[test]
    fn budgets_and_parameters_are_tracked() {
        let values = datasets::hist_dataset();
        let rows = poly_experiment(&values, &[24], &[0, 1, 3]);
        for row in &rows {
            assert_eq!(row.k, (24 / (row.degree + 1)).max(1));
            assert!(row.pieces >= 1);
            assert!(row.parameters >= row.pieces);
            assert!(row.error.is_finite());
        }
    }

    #[test]
    fn error_decreases_with_budget() {
        let values = datasets::dow_dataset_with_length(2_048);
        let rows = poly_experiment(&values, &[12, 96], &[1]);
        assert!(rows[1].error <= rows[0].error + 1e-9);
    }
}
