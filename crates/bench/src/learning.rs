//! The learning-from-samples experiment (Figure 2 of the paper), driven
//! through the unified [`Estimator`] API.
//!
//! For each learning data set (`hist'`, `poly'`, `dow'`) and each sample size
//! `m`, we draw `m` samples, wrap them as a [`Signal`], fit a histogram with
//! `exactdp` (exact V-optimal fit to the empirical distribution), `merging`
//! and `merging2`, and record the mean and standard deviation of the `ℓ₂`
//! error to the *true* distribution over a number of independent trials,
//! together with the `opt_k` reference line (the error of the best
//! `k`-histogram fit to the true distribution).

use approx_hist::{
    DiscreteFunction, Distribution, Estimator, EstimatorBuilder, EstimatorKind, Signal, Synopsis,
};
use hist_datasets as datasets;
use hist_sampling::AliasSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The three estimators plotted in the paper's Figure 2.
pub fn figure2_estimators(k: usize) -> Vec<Box<dyn Estimator>> {
    let builder = EstimatorBuilder::new(k);
    [EstimatorKind::ExactDp, EstimatorKind::Merging, EstimatorKind::Merging2]
        .into_iter()
        .map(|kind| kind.build(builder))
        .collect()
}

/// One learning data set: a true distribution plus its piece budget.
#[derive(Debug, Clone, PartialEq)]
pub struct LearningDataset {
    /// Data-set name (`hist'`, `poly'`, `dow'`).
    pub name: String,
    /// The true underlying distribution samples are drawn from.
    pub distribution: Distribution,
    /// Piece budget `k` used for this data set.
    pub k: usize,
}

/// The three learning data sets of Section 5.2: the Figure 1 signals,
/// subsampled to a support of roughly 1000 and normalized.
pub fn figure2_datasets() -> Vec<LearningDataset> {
    let hist = datasets::to_distribution(&datasets::hist_dataset()).expect("valid signal");
    let poly = datasets::subsample_to_distribution(&datasets::poly_dataset(), 4).expect("valid");
    let dow = datasets::subsample_to_distribution(&datasets::dow_dataset(), 16).expect("valid");
    vec![
        LearningDataset { name: "hist'".into(), distribution: hist, k: 10 },
        LearningDataset { name: "poly'".into(), distribution: poly, k: 10 },
        LearningDataset { name: "dow'".into(), distribution: dow, k: 50 },
    ]
}

/// One point of a learning curve.
#[derive(Debug, Clone, PartialEq)]
pub struct LearningPoint {
    /// Number of samples `m`.
    pub samples: usize,
    /// Mean `ℓ₂` error to the true distribution over the trials.
    pub mean_error: f64,
    /// Standard deviation of the error over the trials.
    pub std_error: f64,
}

/// A learning curve for one estimator on one data set.
#[derive(Debug, Clone, PartialEq)]
pub struct LearningCurve {
    /// Estimator name.
    pub algorithm: String,
    /// Curve points, one per sample size.
    pub points: Vec<LearningPoint>,
}

/// The result of the Figure 2 experiment on one data set.
#[derive(Debug, Clone, PartialEq)]
pub struct LearningExperiment {
    /// Data-set name.
    pub dataset: String,
    /// Error of the best `k`-histogram fit to the *true* distribution
    /// (the `opt_k` reference line of Figure 2).
    pub opt_k: f64,
    /// One curve per estimator.
    pub curves: Vec<LearningCurve>,
}

/// `ℓ₂` distance of a fitted synopsis to the true distribution.
pub fn error_to_distribution(synopsis: &Synopsis, p: &Distribution) -> f64 {
    synopsis.to_dense().iter().zip(p.pmf()).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt()
}

/// The `opt_k` reference line: the error of the best `k`-histogram fit to the
/// true distribution, computed through the exact-DP estimator.
pub fn opt_k_reference(p: &Distribution, k: usize) -> f64 {
    let signal = Signal::from_slice(p.pmf()).expect("valid pmf");
    EstimatorKind::ExactDp
        .build(EstimatorBuilder::new(k))
        .fit(&signal)
        .expect("valid distribution")
        .l2_error(&signal)
        .expect("same domain")
}

/// Runs the Figure 2 experiment on one data set.
pub fn run_learning_experiment(
    dataset: &LearningDataset,
    estimators: &[Box<dyn Estimator>],
    sample_sizes: &[usize],
    trials: usize,
    seed: u64,
) -> LearningExperiment {
    let sampler = AliasSampler::new(&dataset.distribution).expect("valid distribution");
    let opt_k = opt_k_reference(&dataset.distribution, dataset.k);

    let mut curves: Vec<LearningCurve> = estimators
        .iter()
        .map(|e| LearningCurve { algorithm: e.name().to_string(), points: Vec::new() })
        .collect();

    for &m in sample_sizes {
        let mut errors: Vec<Vec<f64>> = vec![Vec::with_capacity(trials); estimators.len()];
        for trial in 0..trials {
            let mut rng = StdRng::seed_from_u64(seed ^ (m as u64) << 20 ^ trial as u64);
            let samples = sampler.sample_many(m, &mut rng);
            let signal = Signal::from_samples(dataset.distribution.domain(), &samples)
                .expect("non-empty sample set");
            for (e_idx, estimator) in estimators.iter().enumerate() {
                let synopsis = estimator.fit(&signal).expect("valid empirical signal");
                errors[e_idx].push(error_to_distribution(&synopsis, &dataset.distribution));
            }
        }
        for (e_idx, estimator_errors) in errors.iter().enumerate() {
            let mean = estimator_errors.iter().sum::<f64>() / trials as f64;
            let var = estimator_errors.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>()
                / (trials.max(2) - 1) as f64;
            curves[e_idx].points.push(LearningPoint {
                samples: m,
                mean_error: mean,
                std_error: var.sqrt(),
            });
        }
    }

    LearningExperiment { dataset: dataset.name.clone(), opt_k, curves }
}

/// The full Figure 2: all data sets, all estimators, the requested sample
/// sizes and trial count.
pub fn figure2(sample_sizes: &[usize], trials: usize, seed: u64) -> Vec<LearningExperiment> {
    figure2_datasets()
        .iter()
        .map(|dataset| {
            run_learning_experiment(
                dataset,
                &figure2_estimators(dataset.k),
                sample_sizes,
                trials,
                seed,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learning_curves_decrease_towards_opt_k() {
        let dataset = &figure2_datasets()[0]; // hist'
        let builder = EstimatorBuilder::new(dataset.k);
        let estimators: Vec<Box<dyn Estimator>> =
            vec![EstimatorKind::Merging.build(builder), EstimatorKind::Merging2.build(builder)];
        let experiment = run_learning_experiment(dataset, &estimators, &[500, 4_000], 4, 7);
        assert_eq!(experiment.curves.len(), 2);
        for curve in &experiment.curves {
            assert_eq!(curve.points.len(), 2);
            let small_m = &curve.points[0];
            let large_m = &curve.points[1];
            assert!(
                large_m.mean_error < small_m.mean_error,
                "{}: error should shrink with more samples ({} vs {})",
                curve.algorithm,
                large_m.mean_error,
                small_m.mean_error
            );
            // With 4000 samples the error approaches the opt_k floor but cannot be
            // dramatically below it minus the sampling noise.
            assert!(large_m.mean_error < 5.0 * (experiment.opt_k + 0.02));
        }
    }

    #[test]
    fn figure2_datasets_match_the_paper_description() {
        let sets = figure2_datasets();
        assert_eq!(sets.len(), 3);
        assert_eq!(sets[0].distribution.domain(), 1_000);
        assert_eq!(sets[1].distribution.domain(), 1_000);
        assert_eq!(sets[2].distribution.domain(), 1_024);
        assert_eq!(sets[2].k, 50);
    }

    #[test]
    fn exactdp_curve_is_produced_and_finite() {
        let dataset = &figure2_datasets()[0];
        let estimators: Vec<Box<dyn Estimator>> =
            vec![EstimatorKind::ExactDp.build(EstimatorBuilder::new(dataset.k))];
        let experiment = run_learning_experiment(dataset, &estimators, &[1_000], 2, 3);
        let point = &experiment.curves[0].points[0];
        assert!(point.mean_error.is_finite() && point.mean_error > 0.0);
        assert!(point.std_error.is_finite());
        assert!(experiment.opt_k > 0.0);
    }
}
