//! Merging-vs-refit benchmark for the `hist-stream` subsystem: what does
//! keeping a synopsis fresh cost, compared to refitting from scratch?
//!
//! * `refit` — fit the whole signal directly (the baseline a non-mergeable
//!   synopsis would pay on every update);
//! * `chunked` — fit per chunk and tree-merge (the sharded construction);
//! * `merge_step` — fold one new chunk synopsis into a running synopsis (the
//!   incremental cost of advancing a stream);
//! * `window_advance` — push one bucket's worth of values through a
//!   [`SlidingWindow`] and re-serve its synopsis.

// Criterion's generated `main` has no doc comment; benches are exempt from the workspace lint.
#![allow(missing_docs)]
use approx_hist::stream::{ChunkedFitter, SlidingWindow};
use approx_hist::{Estimator, EstimatorBuilder, GreedyMerging, Signal};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

const K: usize = 10;

/// A deterministic plateaued signal with pseudo-random jitter.
fn stream_signal(n: usize) -> Signal {
    let mut seed = 0x5EEDu64;
    let mut lcg = move || {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (seed >> 11) as f64 / (1u64 << 53) as f64
    };
    let values: Vec<f64> =
        (0..n).map(|i| ((i / 512) % 5) as f64 * 2.0 + 1.0 + 0.05 * lcg()).collect();
    Signal::from_dense(values).unwrap()
}

fn merge_vs_refit(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_vs_refit");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    let builder = EstimatorBuilder::new(K);
    let estimator = GreedyMerging::new(builder);

    for n in [16_384usize, 65_536] {
        let signal = stream_signal(n);
        group.throughput(Throughput::Elements(n as u64));

        group.bench_with_input(BenchmarkId::new("refit", n), &signal, |b, signal| {
            b.iter(|| black_box(estimator.fit(signal).expect("valid input")))
        });

        let chunked = ChunkedFitter::new(Box::new(estimator), K).with_chunk_len(4_096);
        group.bench_with_input(BenchmarkId::new("chunked", n), &signal, |b, signal| {
            b.iter(|| black_box(chunked.fit(signal).expect("valid input")))
        });

        // Incremental advance: one pre-fitted running synopsis + one new chunk.
        let running = estimator.fit(&signal).expect("valid input");
        let chunk = estimator.fit(&stream_signal(4_096)).expect("valid input");
        group.bench_with_input(BenchmarkId::new("merge_step", n), &running, |b, running| {
            b.iter(|| black_box(running.merge(&chunk, 2 * K + 1).expect("adjacent domains")))
        });
    }
    group.finish();
}

fn window_advance(c: &mut Criterion) {
    let mut group = c.benchmark_group("window_advance");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    let values = stream_signal(65_536).dense_values().into_owned();

    for bucket_len in [512usize, 4_096] {
        let mut window = SlidingWindow::new(
            Box::new(GreedyMerging::new(EstimatorBuilder::new(K))),
            K,
            bucket_len,
            8,
        )
        .expect("valid window");
        window.extend(&values[..window.capacity()]).expect("finite values");
        group.throughput(Throughput::Elements(bucket_len as u64));
        let mut cursor = window.capacity();
        group.bench_function(BenchmarkId::new("advance_and_serve", bucket_len), |b| {
            b.iter(|| {
                // One bucket of fresh values, then re-serve the synopsis.
                for _ in 0..bucket_len {
                    window.push(values[cursor % values.len()]).expect("finite values");
                    cursor += 1;
                }
                black_box(window.synopsis().expect("non-empty window"))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, merge_vs_refit, window_advance);
criterion_main!(benches);
