//! Benchmark of the baseline estimators at a fixed input size (`dow`
//! truncated to 2048 points, `k = 20`): the naive exact DP, the pruned exact
//! DP, the dual greedy, the AHIST-style approximate DP, and the trivial
//! baselines — all through the unified `Estimator` API.

// Criterion's generated `main` has no doc comment; benches are exempt from the workspace lint.
#![allow(missing_docs)]
use approx_hist::{Estimator, EstimatorBuilder, EstimatorKind, Signal};
use criterion::{criterion_group, criterion_main, Criterion};
use hist_baselines as baselines;
use hist_datasets as datasets;
use std::hint::black_box;
use std::time::Duration;

fn baseline_algorithms(c: &mut Criterion) {
    let values = datasets::dow_dataset_with_length(2_048);
    let signal = Signal::from_slice(&values).expect("finite signal");
    let k = 20;
    let builder = EstimatorBuilder::new(k);

    let mut group = c.benchmark_group("baselines_dow2048_k20");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    for kind in [
        EstimatorKind::ExactDpNaive,
        EstimatorKind::ExactDp,
        EstimatorKind::Dual,
        EstimatorKind::Gks,
        EstimatorKind::EqualWidth,
        EstimatorKind::EqualMass,
        EstimatorKind::GreedySplit,
    ] {
        let estimator = kind.build(builder);
        group.bench_function(estimator.name(), |b| {
            b.iter(|| black_box(estimator.fit(&signal).expect("valid input")))
        });
    }
    // The row-parallel exact DP has no estimator adapter (thread count is an
    // implementation knob, not an algorithm); keep its timing for comparison.
    group.bench_function("exactdp_naive_parallel", |b| {
        b.iter(|| black_box(baselines::exact_histogram_parallel(&values, k, 4).expect("valid")))
    });
    group.finish();
}

criterion_group!(benches, baseline_algorithms);
criterion_main!(benches);
