//! Benchmark of the baseline algorithms at a fixed input size (`dow`
//! truncated to 2048 points, `k = 20`): the naive exact DP, the pruned exact
//! DP, the dual greedy, the AHIST-style approximate DP, and the trivial
//! baselines. Together with the `merging` group this reproduces the ordering
//! merging ≪ dual ≪ gks ≪ exactdp of the paper's timing columns.


// Criterion's generated `main` has no doc comment; benches are exempt from the workspace lint.
#![allow(missing_docs)]
use criterion::{criterion_group, criterion_main, Criterion};
use hist_baselines as baselines;
use hist_datasets as datasets;
use std::hint::black_box;
use std::time::Duration;

fn baseline_algorithms(c: &mut Criterion) {
    let values = datasets::dow_dataset_with_length(2_048);
    let k = 20usize;

    let mut group = c.benchmark_group("baselines_dow2048_k20");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));

    group.bench_function("exactdp_naive", |b| {
        b.iter(|| black_box(baselines::exact_histogram(&values, k).expect("valid input")))
    });
    group.bench_function("exactdp_naive_parallel", |b| {
        b.iter(|| {
            black_box(baselines::exact_histogram_parallel(&values, k, 4).expect("valid input"))
        })
    });
    group.bench_function("exactdp_pruned", |b| {
        b.iter(|| black_box(baselines::exact_histogram_pruned(&values, k).expect("valid input")))
    });
    group.bench_function("dual_greedy", |b| {
        b.iter(|| black_box(baselines::dual_histogram(&values, k).expect("valid input")))
    });
    group.bench_function("gks_approx_dp", |b| {
        b.iter(|| black_box(baselines::approx_dp(&values, k, 0.1).expect("valid input")))
    });
    group.bench_function("equal_width", |b| {
        b.iter(|| black_box(baselines::equal_width_histogram(&values, k).expect("valid input")))
    });
    group.bench_function("equal_mass", |b| {
        b.iter(|| black_box(baselines::equal_mass_histogram(&values, k).expect("valid input")))
    });
    group.bench_function("greedy_split", |b| {
        b.iter(|| black_box(baselines::greedy_split_histogram(&values, k).expect("valid input")))
    });
    group.finish();
}

criterion_group!(benches, baseline_algorithms);
criterion_main!(benches);
