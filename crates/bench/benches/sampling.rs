//! Benchmarks of the sampling substrate: alias-table construction, drawing
//! samples, building the empirical signal, and the end-to-end learner of
//! Theorem 2.1 (sample + merge) through the unified `SampleLearner` estimator.

// Criterion's generated `main` has no doc comment; benches are exempt from the workspace lint.
#![allow(missing_docs)]
use approx_hist::{Estimator, EstimatorBuilder, SampleLearner, Signal};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hist_datasets as datasets;
use hist_sampling::{AliasSampler, InverseCdfSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn samplers(c: &mut Criterion) {
    let p = datasets::to_distribution(&datasets::hist_dataset()).expect("valid signal");
    let alias = AliasSampler::new(&p).expect("valid distribution");
    let inverse = InverseCdfSampler::new(&p).expect("valid distribution");
    let m = 100_000usize;

    let mut group = c.benchmark_group("samplers");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    group.throughput(Throughput::Elements(m as u64));
    group.bench_function("alias/draw100k", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            black_box(alias.sample_many(m, &mut rng))
        })
    });
    group.bench_function("inverse_cdf/draw100k", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            black_box(inverse.sample_many(m, &mut rng))
        })
    });
    group.bench_function("alias/build", |b| {
        b.iter(|| black_box(AliasSampler::new(&p).expect("valid distribution")))
    });

    let mut rng = StdRng::seed_from_u64(5);
    let samples = alias.sample_many(m, &mut rng);
    group.bench_function("empirical/build100k", |b| {
        b.iter(|| black_box(Signal::from_samples(1_000, &samples).expect("non-empty samples")))
    });
    group.finish();
}

fn end_to_end_learner(c: &mut Criterion) {
    let p = datasets::subsample_to_distribution(&datasets::dow_dataset(), 16).expect("valid");
    let weights = Signal::from_slice(p.pmf()).expect("valid pmf");

    let mut group = c.benchmark_group("theorem_2_1_learner");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    for m in [1_000usize, 10_000, 100_000] {
        group.throughput(Throughput::Elements(m as u64));
        let learner =
            SampleLearner::new(EstimatorBuilder::new(50).epsilon(0.01).samples(m).seed(11));
        group.bench_with_input(BenchmarkId::new("sample_and_merge", m), &weights, |b, weights| {
            b.iter(|| black_box(learner.fit(weights).expect("valid distribution")))
        });
    }
    group.finish();
}

criterion_group!(benches, samplers, end_to_end_learner);
criterion_main!(benches);
