//! Criterion benchmark behind Table 1: construction time of every offline
//! estimator on the paper's three data sets, dispatched through
//! `&dyn Estimator`.
//!
//! The naive `O(n²k)` DP is benchmarked on `hist` only (it needs minutes on the
//! full `dow` series — run the `table1` binary with `--paper-scale --naive-dp`
//! to reproduce that number); the pruned exact DP covers the larger sets.

// Criterion's generated `main` has no doc comment; benches are exempt from the workspace lint.
#![allow(missing_docs)]
use approx_hist::{Estimator, EstimatorBuilder, EstimatorKind, Signal};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hist_bench::offline::table1_datasets;
use std::hint::black_box;
use std::time::Duration;

fn offline_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));

    for spec in table1_datasets(false) {
        let kinds: Vec<EstimatorKind> = match spec.name.as_str() {
            // The quadratic DP is affordable only on the smallest data set.
            "hist" => vec![
                EstimatorKind::ExactDpNaive,
                EstimatorKind::ExactDp,
                EstimatorKind::Merging,
                EstimatorKind::Merging2,
                EstimatorKind::FastMerging,
                EstimatorKind::FastMerging2,
                EstimatorKind::Dual,
            ],
            _ => vec![
                EstimatorKind::ExactDp,
                EstimatorKind::Merging,
                EstimatorKind::Merging2,
                EstimatorKind::FastMerging,
                EstimatorKind::FastMerging2,
                EstimatorKind::Dual,
            ],
        };
        let signal = Signal::from_slice(&spec.values).expect("finite signal");
        let builder = EstimatorBuilder::new(spec.k);
        for kind in kinds {
            let estimator = kind.build(builder);
            group.bench_with_input(
                BenchmarkId::new(estimator.name(), &spec.name),
                &signal,
                |b, signal| b.iter(|| black_box(estimator.fit(signal).expect("valid input"))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, offline_algorithms);
criterion_main!(benches);
