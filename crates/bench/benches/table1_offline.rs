//! Criterion benchmark behind Table 1: construction time of every offline
//! algorithm on the paper's three data sets.
//!
//! The naive `O(n²k)` DP is benchmarked on `hist` only (it needs minutes on the
//! full `dow` series — run the `table1` binary with `--paper-scale --naive-dp`
//! to reproduce that number); the pruned exact DP covers the larger sets.


// Criterion's generated `main` has no doc comment; benches are exempt from the workspace lint.
#![allow(missing_docs)]
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hist_bench::offline::{table1_datasets, OfflineAlgorithm};
use std::hint::black_box;
use std::time::Duration;

fn offline_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));

    for spec in table1_datasets(false) {
        let algorithms: Vec<OfflineAlgorithm> = match spec.name.as_str() {
            // The quadratic DP is affordable only on the smallest data set.
            "hist" => vec![
                OfflineAlgorithm::ExactDp,
                OfflineAlgorithm::ExactDpPruned,
                OfflineAlgorithm::Merging,
                OfflineAlgorithm::Merging2,
                OfflineAlgorithm::FastMerging,
                OfflineAlgorithm::FastMerging2,
                OfflineAlgorithm::Dual,
            ],
            _ => vec![
                OfflineAlgorithm::ExactDpPruned,
                OfflineAlgorithm::Merging,
                OfflineAlgorithm::Merging2,
                OfflineAlgorithm::FastMerging,
                OfflineAlgorithm::FastMerging2,
                OfflineAlgorithm::Dual,
            ],
        };
        for algorithm in algorithms {
            group.bench_with_input(
                BenchmarkId::new(algorithm.name(), &spec.name),
                &spec,
                |b, spec| b.iter(|| black_box(algorithm.run(&spec.values, spec.k))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, offline_algorithms);
criterion_main!(benches);
