//! Benchmark of the multi-scale algorithm (Theorem 2.2): one hierarchical run
//! versus re-running Algorithm 1 separately for several values of `k`.


// Criterion's generated `main` has no doc comment; benches are exempt from the workspace lint.
#![allow(missing_docs)]
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hist_core::{
    construct_hierarchical_histogram, construct_histogram, MergingParams, SparseFunction,
};
use hist_datasets as datasets;
use std::hint::black_box;
use std::time::Duration;

fn multiscale_vs_repeated(c: &mut Criterion) {
    let mut group = c.benchmark_group("multiscale");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    let ks = [1usize, 2, 5, 10, 20, 50];

    for n in [4_096usize, 16_384] {
        let values = datasets::dow_dataset_with_length(n);
        let q = SparseFunction::from_dense_keep_zeros(&values).expect("finite signal");

        group.bench_with_input(BenchmarkId::new("hierarchical_once", n), &q, |b, q| {
            b.iter(|| black_box(construct_hierarchical_histogram(q).expect("valid input")))
        });
        group.bench_with_input(BenchmarkId::new("algorithm1_per_k", n), &q, |b, q| {
            b.iter(|| {
                for &k in &ks {
                    let params = MergingParams::paper_defaults(k).expect("k >= 1");
                    black_box(construct_histogram(q, &params).expect("valid input"));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, multiscale_vs_repeated);
criterion_main!(benches);
