//! Benchmark of the multi-scale estimator (Theorem 2.2): one hierarchical run
//! versus re-running Algorithm 1 separately for several values of `k`.

// Criterion's generated `main` has no doc comment; benches are exempt from the workspace lint.
#![allow(missing_docs)]
use approx_hist::{Estimator, EstimatorBuilder, EstimatorKind, Signal};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hist_datasets as datasets;
use std::hint::black_box;
use std::time::Duration;

fn multiscale_vs_repeated(c: &mut Criterion) {
    let mut group = c.benchmark_group("multiscale");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    let ks = [1usize, 2, 5, 10, 20, 50];

    for n in [4_096usize, 16_384] {
        let values = datasets::dow_dataset_with_length(n);
        let signal = Signal::from_slice(&values).expect("finite signal");

        let hierarchical = EstimatorKind::Hierarchical.build(EstimatorBuilder::new(50));
        group.bench_with_input(BenchmarkId::new("hierarchical_once", n), &signal, |b, signal| {
            b.iter(|| black_box(hierarchical.fit(signal).expect("valid input")))
        });

        let per_k: Vec<Box<dyn Estimator>> =
            ks.iter().map(|&k| EstimatorKind::Merging.build(EstimatorBuilder::new(k))).collect();
        group.bench_with_input(BenchmarkId::new("algorithm1_per_k", n), &signal, |b, signal| {
            b.iter(|| {
                for estimator in &per_k {
                    black_box(estimator.fit(signal).expect("valid input"));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, multiscale_vs_repeated);
criterion_main!(benches);
