//! Benchmarks of the piecewise-polynomial machinery (Section 4): the
//! `FitPoly_d` projection oracle as a function of the degree, and the full
//! piecewise-polynomial estimator on the `poly` data set.

// Criterion's generated `main` has no doc comment; benches are exempt from the workspace lint.
#![allow(missing_docs)]
use approx_hist::{Estimator, EstimatorBuilder, PiecewisePoly, Signal};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hist_core::{Interval, SparseFunction};
use hist_datasets as datasets;
use hist_poly::{fit_polynomial, least_squares_fit};
use std::hint::black_box;
use std::time::Duration;

fn projection_oracle(c: &mut Criterion) {
    let values = datasets::poly_dataset();
    let q = SparseFunction::from_dense_keep_zeros(&values).expect("finite signal");
    let interval = Interval::new(0, values.len() - 1).expect("valid interval");

    let mut group = c.benchmark_group("fitpoly_projection");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    for degree in [0usize, 1, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("gram", degree), &degree, |b, &d| {
            b.iter(|| black_box(fit_polynomial(&q, interval, d).expect("valid input")))
        });
    }
    // The dense least-squares reference at a moderate degree, for comparison.
    group.bench_function("least_squares/degree2", |b| {
        b.iter(|| black_box(least_squares_fit(&values, interval, 2).expect("valid input")))
    });
    group.finish();
}

fn piecewise_construction(c: &mut Criterion) {
    let values = datasets::poly_dataset();
    let signal = Signal::from_slice(&values).expect("finite signal");

    let mut group = c.benchmark_group("piecewise_polynomial");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    for degree in [0usize, 1, 2, 3] {
        let estimator = PiecewisePoly::new(EstimatorBuilder::new(10).degree(degree));
        group.bench_with_input(BenchmarkId::new("construct", degree), &signal, |b, signal| {
            b.iter(|| black_box(estimator.fit(signal).expect("valid input")))
        });
    }
    group.finish();
}

criterion_group!(benches, projection_oracle, piecewise_construction);
criterion_main!(benches);
