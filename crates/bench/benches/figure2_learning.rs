//! Criterion benchmark behind Figure 2: the cost of learning a histogram from
//! `m = 10000` samples — sampling, building the empirical signal, and
//! post-processing with `exactdp`, `merging` or `merging2` through the unified
//! `Estimator` API.

// Criterion's generated `main` has no doc comment; benches are exempt from the workspace lint.
#![allow(missing_docs)]
use approx_hist::{Estimator, Signal};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hist_bench::learning::{figure2_datasets, figure2_estimators};
use hist_sampling::AliasSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn learning_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure2");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    let m = 10_000usize;

    for dataset in figure2_datasets() {
        let sampler = AliasSampler::new(&dataset.distribution).expect("valid distribution");
        let mut rng = StdRng::seed_from_u64(1);
        let samples = sampler.sample_many(m, &mut rng);
        let domain = dataset.distribution.pmf().len();
        let empirical = Signal::from_samples(domain, &samples).expect("non-empty samples");

        // Post-processing stage (the part the paper's Theorem 2.1 bounds by O(m)).
        for estimator in figure2_estimators(dataset.k) {
            group.bench_with_input(
                BenchmarkId::new(format!("postprocess/{}", estimator.name()), &dataset.name),
                &empirical,
                |b, empirical| b.iter(|| black_box(estimator.fit(empirical).expect("valid"))),
            );
        }

        // Sampling stage (alias sampling + empirical signal construction).
        group.bench_with_input(
            BenchmarkId::new("sample-and-count", &dataset.name),
            &domain,
            |b, &domain| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(7);
                    let samples = sampler.sample_many(m, &mut rng);
                    black_box(Signal::from_samples(domain, &samples).expect("non-empty samples"))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, learning_pipeline);
criterion_main!(benches);
