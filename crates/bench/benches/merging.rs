//! Scaling benchmark for the merging estimators: construction time of
//! Algorithm 1, `fastmerging` and Algorithm 2 as a function of the input
//! sparsity `s` — the paper's claim is linear scaling independent of the
//! domain size `n`.

// Criterion's generated `main` has no doc comment; benches are exempt from the workspace lint.
#![allow(missing_docs)]
use approx_hist::{Estimator, EstimatorBuilder, EstimatorKind, Signal, SparseFunction};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

/// A deterministic pseudo-random sparse signal with `s` nonzeros spread over a
/// domain 1000× larger.
fn sparse_signal(s: usize) -> Signal {
    let domain = s * 1_000;
    let mut seed = 0xC0FFEEu64;
    let mut lcg = move || {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (seed >> 11) as f64 / (1u64 << 53) as f64
    };
    let entries: Vec<(usize, f64)> = (0..s).map(|i| (i * 1_000 + 17, 1.0 + lcg() * 9.0)).collect();
    Signal::from_sparse(SparseFunction::new(domain, entries).expect("sorted entries"))
}

fn merging_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("merging_scaling");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    let builder = EstimatorBuilder::new(10);

    for s in [1_000usize, 10_000, 100_000] {
        let signal = sparse_signal(s);
        group.throughput(Throughput::Elements(s as u64));
        for kind in
            [EstimatorKind::Merging, EstimatorKind::FastMerging, EstimatorKind::Hierarchical]
        {
            let estimator = kind.build(builder);
            group.bench_with_input(BenchmarkId::new(estimator.name(), s), &signal, |b, signal| {
                b.iter(|| black_box(estimator.fit(signal).expect("valid input")))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, merging_scaling);
criterion_main!(benches);
