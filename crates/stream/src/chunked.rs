//! Chunked (sharded) construction: fit per chunk, merge pairwise in a tree.
//!
//! [`ChunkedFitter`] is the batch-parallel shape of mergeable synopses: the
//! signal is split into contiguous chunks, every chunk is fitted
//! independently by an inner [`Estimator`] (in a sharded deployment each
//! shard fits its own chunk), and the per-chunk synopses are combined
//! bottom-up with [`Synopsis::merge`] — `⌈log₂ m⌉` merge levels for `m`
//! chunks, each merge re-merging down to `2k + 1` pieces.

use hist_core::{Error, Estimator, Result, Signal, Synopsis};

use crate::merge_budget;

/// Tree-merges fitted per-chunk synopses down to `merge_budget(budget)`
/// pieces and rebrands the result — the shared tail of the sequential and
/// parallel chunked fitters, so both produce identical outputs from
/// identical chunk fits.
pub(crate) fn merge_fitted_chunks(
    name: &'static str,
    budget: usize,
    chunks: Vec<Synopsis>,
) -> Result<Synopsis> {
    let merged = tree_merge(chunks, merge_budget(budget))?;
    Ok(Synopsis::new(name, budget, merged.model().clone()))
}

/// Default number of chunks the heuristic splits a signal into when no
/// explicit chunk length is configured.
const DEFAULT_CHUNKS: usize = 8;

/// The heuristic chunk length for a domain of `n` values when none is
/// configured: `⌈n / 8⌉`, i.e. about eight chunks — enough to exercise the
/// merge tree without making the per-chunk fits trivially small.
#[inline]
pub fn default_chunk_len(n: usize) -> usize {
    n.div_ceil(DEFAULT_CHUNKS).max(1)
}

/// Combines per-chunk synopses (in domain order) into one synopsis over the
/// concatenated domain, merging pairwise level by level.
///
/// Each merge uses `budget` output pieces, so the tree has `⌈log₂ m⌉` levels
/// and the result has at most `budget` pieces (or the single input's pieces
/// when `m = 1`). Errors if `synopses` is empty or `budget` is zero — a zero
/// budget would slip through the single-synopsis path unchecked (pairwise
/// merges reject it, but `m = 1` performs none) and let callers build an
/// empty synopsis.
pub fn tree_merge(synopses: Vec<Synopsis>, budget: usize) -> Result<Synopsis> {
    if synopses.is_empty() {
        return Err(Error::InvalidParameter {
            name: "synopses",
            reason: "tree_merge needs at least one synopsis".into(),
        });
    }
    if budget == 0 {
        return Err(Error::InvalidParameter {
            name: "budget",
            reason: "the tree-merge budget must be at least 1".into(),
        });
    }
    let mut level = synopses;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut it = level.into_iter();
        while let Some(left) = it.next() {
            match it.next() {
                Some(right) => next.push(left.merge(&right, budget)?),
                None => next.push(left),
            }
        }
        level = next;
    }
    Ok(level.pop().expect("non-empty by construction"))
}

/// Fit-per-chunk, merge-in-a-tree construction: the sharded / parallel shape
/// of histogram fitting.
///
/// Wraps any inner [`Estimator`]; `fit` splits the signal's dense view into
/// contiguous chunks, fits each chunk with the inner estimator, and
/// tree-merges the per-chunk synopses down to `2k + 1` pieces for piece
/// budget `k`. The output is always piecewise constant (polynomial per-chunk
/// fits enter the merge as their per-piece means).
pub struct ChunkedFitter {
    inner: Box<dyn Estimator>,
    budget: usize,
    chunk_len: Option<usize>,
}

impl ChunkedFitter {
    /// A chunked fitter with piece budget `budget`, fitting every chunk with
    /// `inner` and using the heuristic chunk length ([`default_chunk_len`]).
    pub fn new(inner: Box<dyn Estimator>, budget: usize) -> Self {
        Self { inner, budget, chunk_len: None }
    }

    /// Overrides the chunk length (number of signal values per chunk).
    pub fn with_chunk_len(mut self, chunk_len: usize) -> Self {
        self.chunk_len = Some(chunk_len);
        self
    }

    /// The piece budget `k` of the merged output.
    #[inline]
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Fits every chunk independently and returns the per-chunk synopses in
    /// domain order — the intermediate state a sharded deployment would ship
    /// between nodes before [`tree_merge`].
    pub fn fit_chunks(&self, signal: &Signal) -> Result<Vec<Synopsis>> {
        self.validate()?;
        let values = signal.dense_values();
        values.chunks(self.chunk_len_for(values.len())).map(|chunk| self.fit_one(chunk)).collect()
    }

    /// The chunk length used for a domain of `n` values: the configured
    /// override or the heuristic [`default_chunk_len`].
    pub(crate) fn chunk_len_for(&self, n: usize) -> usize {
        self.chunk_len.unwrap_or_else(|| default_chunk_len(n))
    }

    /// Fits one chunk with the inner estimator.
    pub(crate) fn fit_one(&self, chunk: &[f64]) -> Result<Synopsis> {
        self.inner.fit(&Signal::from_slice(chunk)?)
    }

    pub(crate) fn validate(&self) -> Result<()> {
        if self.budget == 0 {
            return Err(Error::InvalidParameter {
                name: "budget",
                reason: "the chunked piece budget must be at least 1".into(),
            });
        }
        if self.chunk_len == Some(0) {
            return Err(Error::InvalidParameter {
                name: "chunk_len",
                reason: "chunks must cover at least one value".into(),
            });
        }
        Ok(())
    }
}

impl Estimator for ChunkedFitter {
    fn name(&self) -> &'static str {
        "chunked"
    }

    fn fit(&self, signal: &Signal) -> Result<Synopsis> {
        let chunks = self.fit_chunks(signal)?;
        merge_fitted_chunks(self.name(), self.budget, chunks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hist_core::{EstimatorBuilder, GreedyMerging};

    fn step_signal(n: usize) -> Signal {
        let values: Vec<f64> = (0..n).map(|i| ((i / (n / 4).max(1)) % 4) as f64 + 1.0).collect();
        Signal::from_dense(values).unwrap()
    }

    fn fitter(k: usize) -> ChunkedFitter {
        ChunkedFitter::new(Box::new(GreedyMerging::new(EstimatorBuilder::new(k))), k)
    }

    #[test]
    fn chunked_fit_covers_the_whole_domain() {
        let signal = step_signal(400);
        let synopsis = fitter(4).fit(&signal).unwrap();
        assert_eq!(synopsis.domain(), 400);
        assert_eq!(synopsis.estimator(), "chunked");
        assert_eq!(synopsis.target_k(), 4);
        assert!(synopsis.num_pieces() <= merge_budget(4));
        assert!(synopsis.l2_error(&signal).unwrap() < 1e-9, "exact 4-step signal");
    }

    #[test]
    fn chunk_len_one_and_single_chunk_both_work() {
        let signal = step_signal(64);
        for chunk_len in [1usize, 7, 64, 1000] {
            let synopsis = fitter(4).with_chunk_len(chunk_len).fit(&signal).unwrap();
            assert_eq!(synopsis.domain(), 64, "chunk_len {chunk_len}");
            assert!(synopsis.l2_error(&signal).unwrap() < 1e-9, "chunk_len {chunk_len}");
        }
    }

    #[test]
    fn fit_chunks_exposes_the_shard_state() {
        let signal = step_signal(400);
        let chunks = fitter(4).with_chunk_len(100).fit_chunks(&signal).unwrap();
        assert_eq!(chunks.len(), 4);
        assert!(chunks.iter().all(|c| c.domain() == 100));
        let merged = tree_merge(chunks, merge_budget(4)).unwrap();
        assert_eq!(merged.domain(), 400);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let signal = step_signal(16);
        assert!(fitter(0).fit(&signal).is_err());
        assert!(fitter(3).with_chunk_len(0).fit(&signal).is_err());
        assert!(tree_merge(Vec::new(), 3).is_err());
        // Regression: a zero budget used to slip through the single-synopsis
        // path (no pairwise merge ever checked it).
        for parts in [1usize, 4] {
            let chunks = fitter(3).with_chunk_len(16 / parts).fit_chunks(&signal).unwrap();
            assert_eq!(chunks.len(), parts);
            assert!(tree_merge(chunks, 0).is_err(), "budget 0 with {parts} chunk(s)");
        }
    }
}
