//! Sliding-window maintenance: a synopsis of the most recent values of an
//! unbounded stream, kept fresh by bucketed eviction and re-merging.
//!
//! [`SlidingWindow`] holds the window as `num_buckets` fitted sub-synopses of
//! `bucket_len` values each plus one partially filled tail buffer. Every
//! `bucket_len` pushes the tail is fitted into a new bucket and the oldest
//! bucket is evicted, so the maintained window always covers the most recent
//! `len()` values with `len() ∈ [W, W + bucket_len)` once warmed up (for
//! capacity `W = bucket_len · num_buckets`) — the standard bucket-granular
//! approximation of a sliding window. Queries go through
//! [`SlidingWindow::synopsis`], which tree-merges the live buckets (and the
//! tail) down to `2k + 1` pieces.

use std::collections::VecDeque;

use hist_core::{Error, Estimator, Result, Signal, Synopsis};

use crate::chunked::tree_merge;
use crate::merge_budget;

/// A bucketed sliding-window synopsis maintainer over a value stream.
pub struct SlidingWindow {
    inner: Box<dyn Estimator>,
    budget: usize,
    bucket_len: usize,
    num_buckets: usize,
    /// Fitted full buckets, oldest first.
    buckets: VecDeque<Synopsis>,
    /// The partially filled newest bucket.
    tail: Vec<f64>,
}

impl SlidingWindow {
    /// A window of `num_buckets` buckets of `bucket_len` values each
    /// (capacity `bucket_len · num_buckets`), fitting buckets with `inner`
    /// and serving synopses re-merged to piece budget `budget`.
    pub fn new(
        inner: Box<dyn Estimator>,
        budget: usize,
        bucket_len: usize,
        num_buckets: usize,
    ) -> Result<Self> {
        if budget == 0 {
            return Err(Error::InvalidParameter {
                name: "budget",
                reason: "the window piece budget must be at least 1".into(),
            });
        }
        if bucket_len == 0 || num_buckets == 0 {
            return Err(Error::InvalidParameter {
                name: "bucket_len",
                reason: "the window needs at least one bucket of at least one value".into(),
            });
        }
        Ok(Self {
            inner,
            budget,
            bucket_len,
            num_buckets,
            buckets: VecDeque::with_capacity(num_buckets + 1),
            tail: Vec::with_capacity(bucket_len),
        })
    }

    /// Advances the window by one value: appends it and, when it completes a
    /// bucket, fits the bucket and evicts the oldest one past capacity.
    pub fn push(&mut self, value: f64) -> Result<()> {
        if !value.is_finite() {
            return Err(Error::NonFiniteValue { context: "SlidingWindow::push" });
        }
        self.tail.push(value);
        if self.tail.len() == self.bucket_len {
            let bucket = self.inner.fit(&Signal::from_slice(&self.tail)?)?;
            self.tail.clear();
            self.buckets.push_back(bucket);
            if self.buckets.len() > self.num_buckets {
                self.buckets.pop_front();
            }
        }
        Ok(())
    }

    /// Advances the window by a slice of values.
    pub fn extend(&mut self, values: &[f64]) -> Result<()> {
        for &v in values {
            self.push(v)?;
        }
        Ok(())
    }

    /// Number of values currently covered by the window.
    #[inline]
    pub fn len(&self) -> usize {
        self.buckets.len() * self.bucket_len + self.tail.len()
    }

    /// Whether the window currently covers no values.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Nominal window capacity `bucket_len · num_buckets`; once that many
    /// values have been pushed, `len()` stays in `[capacity, capacity +
    /// bucket_len)`.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.bucket_len * self.num_buckets
    }

    /// The synopsis of the current window contents (domain `[0, len())`,
    /// oldest value first).
    ///
    /// Tree-merges the live bucket synopses plus a fit of the tail buffer
    /// down to `2k + 1` pieces; errors while the window is still empty.
    pub fn synopsis(&self) -> Result<Synopsis> {
        let mut parts: Vec<Synopsis> = self.buckets.iter().cloned().collect();
        if !self.tail.is_empty() {
            parts.push(self.inner.fit(&Signal::from_slice(&self.tail)?)?);
        }
        if parts.is_empty() {
            return Err(Error::InvalidParameter {
                name: "window",
                reason: "no values have been pushed yet".into(),
            });
        }
        let merged = tree_merge(parts, merge_budget(self.budget))?;
        Ok(Synopsis::new("sliding-window", self.budget, merged.model().clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hist_core::{EstimatorBuilder, GreedyMerging};

    fn window(k: usize, bucket_len: usize, num_buckets: usize) -> SlidingWindow {
        SlidingWindow::new(
            Box::new(GreedyMerging::new(EstimatorBuilder::new(k))),
            k,
            bucket_len,
            num_buckets,
        )
        .unwrap()
    }

    #[test]
    fn window_len_tracks_pushes_and_evictions() {
        let mut w = window(3, 10, 4);
        assert!(w.is_empty());
        assert_eq!(w.capacity(), 40);
        for i in 0..35 {
            w.push(i as f64).unwrap();
        }
        assert_eq!(w.len(), 35, "still filling up");
        for i in 35..40 {
            w.push(i as f64).unwrap();
        }
        assert_eq!(w.len(), w.capacity(), "warmed up");
        for i in 40..200 {
            w.push(i as f64).unwrap();
            assert!(w.len() >= w.capacity());
            assert!(w.len() < w.capacity() + 10);
        }
    }

    #[test]
    fn synopsis_reflects_only_the_window() {
        // Stream: a long prefix of 100s, then exactly one window of 5s — the
        // merged synopsis must only see the 5s.
        let mut w = window(3, 16, 4);
        for _ in 0..640 {
            w.push(100.0).unwrap();
        }
        for _ in 0..w.capacity() {
            w.push(5.0).unwrap();
        }
        let synopsis = w.synopsis().unwrap();
        assert_eq!(synopsis.domain(), w.len());
        let window_signal = Signal::from_dense(vec![5.0; w.len()]).unwrap();
        assert!(synopsis.l2_error(&window_signal).unwrap() < 1e-9);
    }

    #[test]
    fn synopsis_includes_the_partial_tail() {
        let mut w = window(2, 8, 2);
        for i in 0..19 {
            w.push(i as f64).unwrap();
        }
        let synopsis = w.synopsis().unwrap();
        assert_eq!(synopsis.domain(), 19, "2 buckets + 3 tail values");
        assert_eq!(synopsis.estimator(), "sliding-window");
    }

    #[test]
    fn invalid_windows_are_rejected() {
        let inner = || Box::new(GreedyMerging::new(EstimatorBuilder::new(3)));
        assert!(SlidingWindow::new(inner(), 0, 4, 4).is_err());
        assert!(SlidingWindow::new(inner(), 3, 0, 4).is_err());
        assert!(SlidingWindow::new(inner(), 3, 4, 0).is_err());
        let w = window(3, 4, 4);
        assert!(w.synopsis().is_err());
        let mut w = window(3, 4, 4);
        assert!(w.push(f64::INFINITY).is_err());
    }
}
