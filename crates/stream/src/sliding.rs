//! Sliding-window maintenance: a synopsis of the most recent values of an
//! unbounded stream, kept fresh by bucketed eviction and re-merging.
//!
//! [`SlidingWindow`] holds the window as `num_buckets` fitted sub-synopses of
//! `bucket_len` values each plus one partially filled tail buffer. Every
//! `bucket_len` pushes the tail is fitted into a new bucket and the oldest
//! bucket is evicted, so the maintained window always covers the most recent
//! `len()` values with `len() ∈ [W, W + bucket_len)` once warmed up (for
//! capacity `W = bucket_len · num_buckets`) — the standard bucket-granular
//! approximation of a sliding window. Queries go through
//! [`SlidingWindow::synopsis`], which tree-merges the live buckets (and the
//! tail) down to `2k + 1` pieces.

use std::collections::VecDeque;

use hist_core::{Error, Estimator, Result, Signal, Synopsis};

use crate::chunked::tree_merge;
use crate::merge_budget;

/// A bucketed sliding-window synopsis maintainer over a value stream.
pub struct SlidingWindow {
    inner: Box<dyn Estimator>,
    budget: usize,
    bucket_len: usize,
    num_buckets: usize,
    /// Fitted full buckets, oldest first.
    buckets: VecDeque<Synopsis>,
    /// The partially filled newest bucket.
    tail: Vec<f64>,
}

impl SlidingWindow {
    /// A window of `num_buckets` buckets of `bucket_len` values each
    /// (capacity `bucket_len · num_buckets`), fitting buckets with `inner`
    /// and serving synopses re-merged to piece budget `budget`.
    pub fn new(
        inner: Box<dyn Estimator>,
        budget: usize,
        bucket_len: usize,
        num_buckets: usize,
    ) -> Result<Self> {
        if budget == 0 {
            return Err(Error::InvalidParameter {
                name: "budget",
                reason: "the window piece budget must be at least 1".into(),
            });
        }
        if bucket_len == 0 || num_buckets == 0 {
            return Err(Error::InvalidParameter {
                name: "bucket_len",
                reason: "the window needs at least one bucket of at least one value".into(),
            });
        }
        Ok(Self {
            inner,
            budget,
            bucket_len,
            num_buckets,
            buckets: VecDeque::with_capacity(num_buckets + 1),
            tail: Vec::with_capacity(bucket_len),
        })
    }

    /// Advances the window by one value: appends it and, when it completes a
    /// bucket, fits the bucket and evicts the oldest one past capacity.
    ///
    /// Failure semantics: a non-finite value is rejected up front and nothing
    /// is consumed. If the inner fit of a completed bucket fails, the value
    /// **is** consumed — the whole bucket stays queued in the tail buffer and
    /// the next `push`/`extend` retries it, so bucket boundaries never drift
    /// and the window is never wedged.
    pub fn push(&mut self, value: f64) -> Result<()> {
        if !value.is_finite() {
            return Err(Error::NonFiniteValue { context: "SlidingWindow::push" });
        }
        self.tail.push(value);
        self.drain_full_buckets()
    }

    /// Advances the window by a slice of values, **all or nothing**: a
    /// non-finite value anywhere in `values` is a typed error and *no* value
    /// is consumed; otherwise every value is consumed even when a bucket fit
    /// fails mid-slice — the failed bucket stays queued in the tail buffer,
    /// the error is returned after the whole slice has been buffered, and the
    /// next `push`/`extend` retries it.
    pub fn extend(&mut self, values: &[f64]) -> Result<()> {
        if values.iter().any(|v| !v.is_finite()) {
            return Err(Error::NonFiniteValue { context: "SlidingWindow::extend" });
        }
        self.tail.extend_from_slice(values);
        self.drain_full_buckets()
    }

    /// Fits every complete bucket queued in the tail buffer, evicting past
    /// capacity.
    ///
    /// The trigger is `>=`, not `==`: a failed inner fit leaves the bucket's
    /// values queued for retry (the tail may temporarily hold one bucket or
    /// more), and the tail is only drained after the fit succeeded, so an
    /// error never loses values or shifts bucket boundaries.
    fn drain_full_buckets(&mut self) -> Result<()> {
        while self.tail.len() >= self.bucket_len {
            let bucket = self.inner.fit(&Signal::from_slice(&self.tail[..self.bucket_len])?)?;
            self.tail.drain(..self.bucket_len);
            self.buckets.push_back(bucket);
            if self.buckets.len() > self.num_buckets {
                self.buckets.pop_front();
            }
        }
        Ok(())
    }

    /// Number of values queued in the tail buffer awaiting bucket formation.
    ///
    /// Normally strictly less than the bucket length; after a failed inner
    /// fit it can reach or exceed it (the failed bucket stays queued until a
    /// later `push`/`extend` retries successfully).
    #[inline]
    pub fn buffered(&self) -> usize {
        self.tail.len()
    }

    /// Number of values currently covered by the window.
    #[inline]
    pub fn len(&self) -> usize {
        self.buckets.len() * self.bucket_len + self.tail.len()
    }

    /// Whether the window currently covers no values.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The bucket length the window advances at.
    #[inline]
    pub fn bucket_len(&self) -> usize {
        self.bucket_len
    }

    /// Nominal window capacity `bucket_len · num_buckets`; once that many
    /// values have been pushed, `len()` stays in `[capacity, capacity +
    /// bucket_len)`.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.bucket_len * self.num_buckets
    }

    /// The synopsis of the current window contents (domain `[0, len())`,
    /// oldest value first).
    ///
    /// Tree-merges the live bucket synopses plus a fit of the tail buffer
    /// down to `2k + 1` pieces; errors while the window is still empty.
    pub fn synopsis(&self) -> Result<Synopsis> {
        let mut parts: Vec<Synopsis> = self.buckets.iter().cloned().collect();
        if !self.tail.is_empty() {
            parts.push(self.inner.fit(&Signal::from_slice(&self.tail)?)?);
        }
        if parts.is_empty() {
            return Err(Error::InvalidParameter {
                name: "window",
                reason: "no values have been pushed yet".into(),
            });
        }
        let merged = tree_merge(parts, merge_budget(self.budget))?;
        Ok(Synopsis::new("sliding-window", self.budget, merged.model().clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hist_core::{EstimatorBuilder, GreedyMerging};

    fn window(k: usize, bucket_len: usize, num_buckets: usize) -> SlidingWindow {
        SlidingWindow::new(
            Box::new(GreedyMerging::new(EstimatorBuilder::new(k))),
            k,
            bucket_len,
            num_buckets,
        )
        .unwrap()
    }

    #[test]
    fn window_len_tracks_pushes_and_evictions() {
        let mut w = window(3, 10, 4);
        assert!(w.is_empty());
        assert_eq!(w.capacity(), 40);
        for i in 0..35 {
            w.push(i as f64).unwrap();
        }
        assert_eq!(w.len(), 35, "still filling up");
        for i in 35..40 {
            w.push(i as f64).unwrap();
        }
        assert_eq!(w.len(), w.capacity(), "warmed up");
        for i in 40..200 {
            w.push(i as f64).unwrap();
            assert!(w.len() >= w.capacity());
            assert!(w.len() < w.capacity() + 10);
        }
    }

    #[test]
    fn synopsis_reflects_only_the_window() {
        // Stream: a long prefix of 100s, then exactly one window of 5s — the
        // merged synopsis must only see the 5s.
        let mut w = window(3, 16, 4);
        for _ in 0..640 {
            w.push(100.0).unwrap();
        }
        for _ in 0..w.capacity() {
            w.push(5.0).unwrap();
        }
        let synopsis = w.synopsis().unwrap();
        assert_eq!(synopsis.domain(), w.len());
        let window_signal = Signal::from_dense(vec![5.0; w.len()]).unwrap();
        assert!(synopsis.l2_error(&window_signal).unwrap() < 1e-9);
    }

    #[test]
    fn synopsis_includes_the_partial_tail() {
        let mut w = window(2, 8, 2);
        for i in 0..19 {
            w.push(i as f64).unwrap();
        }
        let synopsis = w.synopsis().unwrap();
        assert_eq!(synopsis.domain(), 19, "2 buckets + 3 tail values");
        assert_eq!(synopsis.estimator(), "sliding-window");
    }

    #[test]
    fn invalid_windows_are_rejected() {
        let inner = || Box::new(GreedyMerging::new(EstimatorBuilder::new(3)));
        assert!(SlidingWindow::new(inner(), 0, 4, 4).is_err());
        assert!(SlidingWindow::new(inner(), 3, 0, 4).is_err());
        assert!(SlidingWindow::new(inner(), 3, 4, 0).is_err());
        let w = window(3, 4, 4);
        assert!(w.synopsis().is_err());
        let mut w = window(3, 4, 4);
        assert!(w.push(f64::INFINITY).is_err());
    }

    /// The wedge regression for the window: with the old `==` trigger a
    /// failed bucket fit left the tail past the boundary forever, so the
    /// window stopped advancing. The `>=` drain retries the bucket instead.
    #[test]
    fn failed_bucket_fit_is_retried_not_wedged() {
        use std::sync::atomic::Ordering;

        let (fallible, deny, _fits) = crate::testutil::FallibleEstimator::with_handles(3);
        let mut w = SlidingWindow::new(fallible, 3, 8, 4).unwrap();
        for i in 0..7 {
            w.push(i as f64).unwrap();
        }
        deny.store(1, Ordering::SeqCst);
        assert!(w.push(7.0).is_err());
        assert_eq!(w.len(), 8, "failed value is consumed, not lost");
        assert_eq!(w.buffered(), 8, "failed bucket stays queued");

        // The retry forms the bucket at the original boundary.
        w.push(8.0).unwrap();
        assert_eq!(w.buffered(), 1);
        assert_eq!(w.len(), 9);

        // Keep streaming: eviction and window accounting are unaffected.
        for i in 9..100 {
            w.push(i as f64).unwrap();
        }
        assert!(w.len() >= w.capacity() && w.len() < w.capacity() + 8);
        let mut clean = window(3, 8, 4);
        clean.extend(&(0..100).map(f64::from).collect::<Vec<_>>()).unwrap();
        assert_eq!(w.len(), clean.len());
        let bits =
            |s: &Synopsis| s.boundary_masses().iter().map(|m| m.to_bits()).collect::<Vec<u64>>();
        assert_eq!(
            bits(&w.synopsis().unwrap()),
            bits(&clean.synopsis().unwrap()),
            "recovered window is bit-identical to a never-failed one"
        );
    }

    /// `extend` is all-or-nothing: a non-finite value anywhere rejects the
    /// slice untouched; a mid-slice fit failure still consumes every value.
    #[test]
    fn extend_failure_semantics_are_all_or_nothing() {
        use std::sync::atomic::Ordering;

        let mut w = window(3, 8, 4);
        w.extend(&[1.0, 2.0]).unwrap();
        assert!(w.extend(&[3.0, f64::NAN]).is_err());
        assert_eq!(w.len(), 2, "rejected slice is not consumed at all");

        let (fallible, deny, fits) = crate::testutil::FallibleEstimator::with_handles(3);
        let mut w = SlidingWindow::new(fallible, 3, 8, 4).unwrap();
        deny.store(1, Ordering::SeqCst);
        let values: Vec<f64> = (0..20).map(f64::from).collect();
        assert!(w.extend(&values).is_err());
        assert_eq!(w.len(), 20, "whole slice consumed despite the error");
        assert_eq!(w.buffered(), 20, "first bucket's failure queues the rest");
        assert_eq!(fits.load(Ordering::SeqCst), 1, "drain stops at the failed bucket");

        w.extend(&[]).unwrap();
        assert_eq!(w.buffered(), 4, "retry nudge drains the backlog");
    }
}
