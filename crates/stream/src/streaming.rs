//! One-pass streaming construction with logarithmic working memory.
//!
//! [`StreamingBuilder`] consumes a value stream left to right and maintains a
//! binary-counter hierarchy of partial synopses: every full chunk is fitted
//! by the inner [`Estimator`], and whenever two partial synopses of the same
//! rank exist they are merged ([`Synopsis::merge`]) and carried one level up
//! — the classical mergeable-summaries pattern (think LSM levels or
//! merge-sort runs). After `n` values the builder holds at most
//! `⌈log₂(n / chunk_len)⌉ + 1` partial synopses of `O(k)` pieces each.

use hist_core::{Error, Estimator, EstimatorBuilder, GreedyMerging, Result, Signal, Synopsis};
use hist_persist::{
    decode_stream_checkpoint, encode_stream_checkpoint, CodecError, CodecResult, StreamCheckpoint,
};

use crate::chunked::default_chunk_len;
use crate::merge_budget;

/// Incremental, single-pass synopsis construction over a value stream.
///
/// Values arrive through [`StreamingBuilder::push`]; a query-ready
/// [`Synopsis`] of everything seen so far is available at any time through
/// [`StreamingBuilder::synopsis`]. Working memory is logarithmic in the
/// stream length (a hierarchy of `O(k)`-piece partial synopses plus one
/// partially filled chunk buffer) — the stream itself is never stored.
pub struct StreamingBuilder {
    inner: Box<dyn Estimator>,
    budget: usize,
    chunk_len: usize,
    /// Binary-counter hierarchy: `levels[i]`, when occupied, summarizes
    /// `2^i` chunks, and deeper levels hold strictly older data.
    levels: Vec<Option<Synopsis>>,
    tail: Vec<f64>,
    pushed: usize,
}

impl StreamingBuilder {
    /// A streaming builder with piece budget `budget`, fitting every
    /// `chunk_len`-value chunk with `inner`.
    pub fn new(inner: Box<dyn Estimator>, budget: usize, chunk_len: usize) -> Result<Self> {
        if budget == 0 {
            return Err(Error::InvalidParameter {
                name: "budget",
                reason: "the streaming piece budget must be at least 1".into(),
            });
        }
        if chunk_len == 0 {
            return Err(Error::InvalidParameter {
                name: "chunk_len",
                reason: "chunks must cover at least one value".into(),
            });
        }
        Ok(Self {
            inner,
            budget,
            chunk_len,
            levels: Vec::new(),
            tail: Vec::with_capacity(chunk_len),
            pushed: 0,
        })
    }

    /// Appends one value to the stream.
    ///
    /// Failure semantics: a non-finite value is rejected up front and nothing
    /// is consumed. If the inner fit (or a hierarchy merge) of a completed
    /// chunk fails, the value **is** consumed — it stays queued in the tail
    /// buffer along with the rest of the pending chunk, and the next
    /// `push`/`extend` retries chunk formation. The builder is never wedged:
    /// chunk boundaries stay aligned to multiples of `chunk_len`, so once the
    /// inner estimator recovers the state is bit-identical to a build that
    /// never failed.
    pub fn push(&mut self, value: f64) -> Result<()> {
        if !value.is_finite() {
            return Err(Error::NonFiniteValue { context: "StreamingBuilder::push" });
        }
        self.tail.push(value);
        self.pushed += 1;
        self.drain_full_chunks(None)
    }

    /// Appends a slice of values to the stream, **all or nothing**:
    ///
    /// * a non-finite value anywhere in `values` is a typed error and *no*
    ///   value is consumed (`len()` is unchanged);
    /// * otherwise every value is consumed (`len()` grows by
    ///   `values.len()`) even when chunk formation fails mid-slice — the
    ///   failed chunk stays queued in the tail buffer and the error is
    ///   returned after the whole slice has been buffered, so callers never
    ///   have to guess how much of a slice was ingested. The next
    ///   `push`/`extend` retries the queued chunks.
    pub fn extend(&mut self, values: &[f64]) -> Result<()> {
        self.extend_collecting_chunks(values, &mut None)
    }

    /// [`StreamingBuilder::extend`] with a tap on chunk formation: every
    /// chunk synopsis fitted (and carried into the hierarchy) while consuming
    /// `values` is also cloned into `completed`, oldest first.
    ///
    /// This is the ingest hook of a live pipeline: the freshly fitted chunk
    /// is exactly the delta a serving store merges in
    /// (`SynopsisStore::update_merge`-style) to track the stream, while the
    /// builder itself remains the checkpointable one-pass state. Failure
    /// semantics match [`StreamingBuilder::extend`]; chunks already formed
    /// before a mid-slice failure are still reported.
    pub fn extend_collecting_chunks(
        &mut self,
        values: &[f64],
        completed: &mut Option<&mut Vec<Synopsis>>,
    ) -> Result<()> {
        if values.iter().any(|v| !v.is_finite()) {
            return Err(Error::NonFiniteValue { context: "StreamingBuilder::extend" });
        }
        self.tail.extend_from_slice(values);
        self.pushed += values.len();
        self.drain_full_chunks(completed.as_deref_mut())
    }

    /// Fits and carries every complete chunk queued in the tail buffer.
    ///
    /// The trigger is `>=`, not `==`: a failed inner fit leaves the fitted
    /// chunk's values queued (the tail may temporarily hold one chunk or
    /// more), and the next call retries from the same chunk boundary. Each
    /// iteration is transactional — the tail is only drained after both the
    /// fit and the hierarchy carry succeeded — so an error never loses or
    /// double-counts values.
    fn drain_full_chunks(&mut self, mut completed: Option<&mut Vec<Synopsis>>) -> Result<()> {
        while self.tail.len() >= self.chunk_len {
            let chunk = self.inner.fit(&Signal::from_slice(&self.tail[..self.chunk_len])?)?;
            let tapped = completed.is_some().then(|| chunk.clone());
            self.carry(chunk)?;
            self.tail.drain(..self.chunk_len);
            if let (Some(sink), Some(chunk)) = (completed.as_deref_mut(), tapped) {
                sink.push(chunk);
            }
        }
        Ok(())
    }

    /// Number of values consumed so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.pushed
    }

    /// Whether no value has been pushed yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pushed == 0
    }

    /// The piece budget the final synopsis is merged down to.
    #[inline]
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// The chunk length every full chunk is fitted at.
    #[inline]
    pub fn chunk_len(&self) -> usize {
        self.chunk_len
    }

    /// Number of full chunks fitted and carried into the hierarchy so far.
    #[inline]
    pub fn chunks_completed(&self) -> usize {
        (self.pushed - self.tail.len()) / self.chunk_len
    }

    /// Number of partial synopses currently held (the builder's working set).
    pub fn num_partials(&self) -> usize {
        self.levels.iter().filter(|l| l.is_some()).count()
    }

    /// Number of values queued in the tail buffer awaiting chunk formation.
    ///
    /// Normally strictly less than the chunk length; after a failed inner
    /// fit it can reach or exceed it (the failed chunk stays queued until a
    /// later `push`/`extend` retries successfully).
    #[inline]
    pub fn buffered(&self) -> usize {
        self.tail.len()
    }

    /// The synopsis of everything pushed so far (domain `[0, len())`).
    ///
    /// Merges the level hierarchy oldest-first plus a fit of the partial tail
    /// chunk; errors when the stream is still empty. `O(k·log(n/chunk_len))`
    /// plus one inner fit of the tail buffer (at most `chunk_len − 1` values
    /// in steady state; more only while a failed chunk fit is queued for
    /// retry).
    pub fn synopsis(&self) -> Result<Synopsis> {
        let budget = merge_budget(self.budget);
        let mut acc: Option<Synopsis> = None;
        // Deeper levels are older; the stream order is oldest → newest.
        for level in self.levels.iter().rev().flatten() {
            acc = Some(match acc {
                None => level.clone(),
                Some(older) => older.merge(level, budget)?,
            });
        }
        if !self.tail.is_empty() {
            let tail = self.inner.fit(&Signal::from_slice(&self.tail)?)?;
            acc = Some(match acc {
                None => tail,
                Some(older) => older.merge(&tail, budget)?,
            });
        }
        match acc {
            Some(synopsis) => Ok(Synopsis::new("streaming", self.budget, synopsis.model().clone())),
            None => Err(Error::InvalidParameter {
                name: "stream",
                reason: "no values have been pushed yet".into(),
            }),
        }
    }

    /// Serializes the builder's resumable state — configuration, progress
    /// counter, the partially filled tail chunk and every partial synopsis of
    /// the binary-counter hierarchy — into a self-contained `AHISTCKP`
    /// container (see `hist-persist`).
    ///
    /// The inner [`Estimator`] is configuration, not state, and is *not*
    /// serialized; [`StreamingBuilder::resume`] takes it again. A build
    /// checkpointed at any split point and resumed with the same inner
    /// estimator consumes the rest of the stream into **bit-identical**
    /// output: all state is round-tripped exactly (floats as raw bits), and
    /// fitting/merging are deterministic.
    pub fn checkpoint(&self) -> Vec<u8> {
        encode_stream_checkpoint(&StreamCheckpoint {
            budget: self.budget,
            chunk_len: self.chunk_len,
            pushed: self.pushed,
            tail: self.tail.clone(),
            levels: self.levels.clone(),
        })
    }

    /// Reconstructs a builder from a [`StreamingBuilder::checkpoint`] byte
    /// container, resuming the one-pass build where it stopped.
    ///
    /// `inner` must be the same estimator configuration the original build
    /// used — it is what fits future chunks, so a different estimator yields
    /// a different (still valid) synopsis. On top of the codec's structural
    /// validation this re-checks the builder's cross-field invariants: a
    /// positive budget and chunk length, and level domains consistent with
    /// `pushed` (level `i` summarizes exactly `2^i` chunks). A tail of one
    /// chunk or more is accepted — it is the legitimate retry backlog of a
    /// build checkpointed after a failed inner fit, and the next
    /// `push`/`extend` drains it. Corrupt or hand-forged checkpoints fail
    /// with a typed error, never a panic.
    pub fn resume(inner: Box<dyn Estimator>, bytes: &[u8]) -> CodecResult<Self> {
        let checkpoint = decode_stream_checkpoint(bytes)?;
        let StreamCheckpoint { budget, chunk_len, pushed, tail, levels } = checkpoint;
        let mut builder = Self::new(inner, budget, chunk_len).map_err(CodecError::Invalid)?;
        let level_error = |rank: usize, domain: usize| {
            CodecError::Invalid(Error::InvalidParameter {
                name: "levels",
                reason: format!(
                    "level {rank} covers {domain} values but must cover chunk_len · 2^{rank}"
                ),
            })
        };
        let mut accounted = tail.len();
        for (rank, level) in levels.iter().enumerate() {
            let Some(synopsis) = level else { continue };
            // Overflow-checked chunk_len · 2^rank; a forged rank that
            // overflows usize can never match a real domain.
            let expected = 1usize
                .checked_shl(rank.min(u32::MAX as usize) as u32)
                .and_then(|chunks| chunk_len.checked_mul(chunks))
                .ok_or_else(|| level_error(rank, synopsis.domain()))?;
            if synopsis.domain() != expected {
                return Err(level_error(rank, synopsis.domain()));
            }
            accounted = accounted
                .checked_add(expected)
                .ok_or_else(|| level_error(rank, synopsis.domain()))?;
        }
        if accounted != pushed {
            return Err(CodecError::Invalid(Error::InvalidParameter {
                name: "pushed",
                reason: format!(
                    "checkpoint claims {pushed} consumed values but levels + tail cover {accounted}"
                ),
            }));
        }
        builder.levels = levels;
        builder.tail = tail;
        builder.pushed = pushed;
        Ok(builder)
    }

    /// Carries a freshly fitted chunk synopsis into the binary-counter
    /// hierarchy, merging with same-rank occupants on the way up.
    ///
    /// Plan-then-commit: all merges run against borrowed occupants first, and
    /// the hierarchy is only mutated once every merge succeeded — a mid-carry
    /// merge failure leaves the builder exactly as it was, so the caller can
    /// retry the whole chunk later.
    fn carry(&mut self, chunk: Synopsis) -> Result<()> {
        let budget = merge_budget(self.budget);
        let mut synopsis = chunk;
        let mut consumed = 0;
        for level in &self.levels {
            match level {
                None => break,
                // The occupant is older, so it forms the left chunk.
                Some(older) => {
                    synopsis = older.merge(&synopsis, budget)?;
                    consumed += 1;
                }
            }
        }
        for level in &mut self.levels[..consumed] {
            *level = None;
        }
        if consumed < self.levels.len() {
            self.levels[consumed] = Some(synopsis);
        } else {
            self.levels.push(Some(synopsis));
        }
        Ok(())
    }
}

/// The streaming construction as a registry [`Estimator`]: feeds the
/// signal's dense view through a [`StreamingBuilder`] whose chunks are
/// fitted by Algorithm 1 ([`GreedyMerging`]) with the builder's parameters.
///
/// Chunk length comes from [`EstimatorBuilder::chunk_len`], defaulting to
/// the [`default_chunk_len`] heuristic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamingMerging {
    builder: EstimatorBuilder,
}

impl StreamingMerging {
    /// A streaming estimator configured from the shared builder.
    pub fn new(builder: EstimatorBuilder) -> Self {
        Self { builder }
    }
}

impl Estimator for StreamingMerging {
    fn name(&self) -> &'static str {
        "streaming"
    }

    fn fit(&self, signal: &Signal) -> Result<Synopsis> {
        self.builder.validate()?;
        let values = signal.dense_values();
        let chunk_len =
            self.builder.chunk_len_value().unwrap_or_else(|| default_chunk_len(values.len()));
        let mut stream = StreamingBuilder::new(
            Box::new(GreedyMerging::new(self.builder)),
            self.builder.k(),
            chunk_len,
        )?;
        stream.extend(&values)?;
        stream.synopsis()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inner(k: usize) -> Box<dyn Estimator> {
        Box::new(GreedyMerging::new(EstimatorBuilder::new(k)))
    }

    #[test]
    fn streaming_matches_the_signal_it_consumed() {
        let values: Vec<f64> = (0..500).map(|i| ((i / 125) % 4) as f64 * 2.0 + 1.0).collect();
        let mut stream = StreamingBuilder::new(inner(4), 4, 32).unwrap();
        stream.extend(&values).unwrap();
        assert_eq!(stream.len(), 500);
        let synopsis = stream.synopsis().unwrap();
        assert_eq!(synopsis.domain(), 500);
        assert_eq!(synopsis.estimator(), "streaming");
        assert!(synopsis.num_pieces() <= merge_budget(4));
        let signal = Signal::from_dense(values).unwrap();
        assert!(synopsis.l2_error(&signal).unwrap() < 1e-9, "exact 4-step stream");
    }

    #[test]
    fn working_memory_stays_logarithmic() {
        let mut stream = StreamingBuilder::new(inner(3), 3, 8).unwrap();
        for i in 0..4_096 {
            stream.push((i % 13) as f64).unwrap();
        }
        // 512 chunks → at most ⌈log₂ 512⌉ + 1 = 10 occupied levels.
        assert!(stream.num_partials() <= 10, "{} partials", stream.num_partials());
    }

    #[test]
    fn synopsis_is_queryable_mid_chunk() {
        let mut stream = StreamingBuilder::new(inner(2), 2, 100).unwrap();
        for i in 0..37 {
            stream.push(i as f64).unwrap();
        }
        let synopsis = stream.synopsis().unwrap();
        assert_eq!(synopsis.domain(), 37, "partial tail chunk is included");
    }

    #[test]
    fn checkpoint_resume_matches_an_uninterrupted_build() {
        let values: Vec<f64> = (0..500).map(|i| ((i * 7) % 23) as f64 * 0.5 + 1.0).collect();
        // Split points cover: mid-tail, exact chunk boundary, several full
        // levels, and the very start.
        for split in [0usize, 13, 64, 200, 333, 499] {
            let mut uninterrupted = StreamingBuilder::new(inner(4), 4, 32).unwrap();
            uninterrupted.extend(&values).unwrap();

            let mut first_half = StreamingBuilder::new(inner(4), 4, 32).unwrap();
            first_half.extend(&values[..split]).unwrap();
            let bytes = first_half.checkpoint();
            drop(first_half);
            let mut resumed = StreamingBuilder::resume(inner(4), &bytes).unwrap();
            assert_eq!(resumed.len(), split);
            resumed.extend(&values[split..]).unwrap();

            let expected = uninterrupted.synopsis().unwrap();
            let actual = resumed.synopsis().unwrap();
            assert_eq!(actual.model(), expected.model(), "split {split}");
            let bits =
                |s: &Synopsis| s.boundary_masses().iter().map(|m| m.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&actual), bits(&expected), "split {split}: boundary bits");
        }
    }

    #[test]
    fn resume_rejects_inconsistent_checkpoints() {
        let mut stream = StreamingBuilder::new(inner(3), 3, 16).unwrap();
        for i in 0..50 {
            stream.push(i as f64).unwrap();
        }
        let good = stream.checkpoint();
        assert!(StreamingBuilder::resume(inner(3), &good).is_ok());

        // Arbitrary corruption is caught (typed error, no panic).
        let mut corrupt = good.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0xFF;
        assert!(StreamingBuilder::resume(inner(3), &corrupt).is_err());
        assert!(StreamingBuilder::resume(inner(3), &[]).is_err());

        // A forged checkpoint whose books don't balance is rejected even
        // though it decodes structurally: claim one extra consumed value.
        let mut checkpoint = hist_persist::decode_stream_checkpoint(&good).unwrap();
        checkpoint.pushed += 1;
        let forged = hist_persist::encode_stream_checkpoint(&checkpoint);
        assert!(StreamingBuilder::resume(inner(3), &forged).is_err());

        // A tail of one chunk or more IS resumable: it is the legitimate
        // retry backlog of a build checkpointed after a failed inner fit.
        // The next push drains the queued chunk(s).
        let mut checkpoint = hist_persist::decode_stream_checkpoint(&good).unwrap();
        checkpoint.pushed += 16 - checkpoint.tail.len();
        checkpoint.tail = vec![1.0; 16];
        let backlogged = hist_persist::encode_stream_checkpoint(&checkpoint);
        let mut resumed = StreamingBuilder::resume(inner(3), &backlogged).unwrap();
        assert_eq!(resumed.buffered(), 16);
        resumed.push(2.0).unwrap();
        assert_eq!(resumed.buffered(), 1, "backlogged chunk drained on next push");
    }

    #[test]
    fn invalid_streams_are_rejected() {
        assert!(StreamingBuilder::new(inner(3), 0, 8).is_err());
        assert!(StreamingBuilder::new(inner(3), 3, 0).is_err());
        let mut stream = StreamingBuilder::new(inner(3), 3, 8).unwrap();
        assert!(stream.is_empty());
        assert!(stream.synopsis().is_err());
        assert!(stream.push(f64::NAN).is_err());
    }

    fn boundary_bits(s: &Synopsis) -> Vec<u64> {
        s.boundary_masses().iter().map(|m| m.to_bits()).collect()
    }

    /// The wedge regression: with the old `tail.len() == chunk_len` trigger a
    /// single failed inner fit left the tail permanently past the boundary and
    /// chunk formation never fired again. The `>=` drain retries instead.
    #[test]
    fn failed_fit_leaves_builder_resumable_not_wedged() {
        use std::sync::atomic::Ordering;

        let values: Vec<f64> = (0..160).map(|i| ((i * 11) % 17) as f64).collect();
        let (fallible, deny, _fits) = crate::testutil::FallibleEstimator::with_handles(4);
        let mut stream = StreamingBuilder::new(fallible, 4, 16).unwrap();
        stream.extend(&values[..15]).unwrap();

        // The 16th value completes a chunk whose fit is denied: the push
        // errors, but the value is consumed and the chunk stays queued.
        deny.store(1, Ordering::SeqCst);
        assert!(stream.push(values[15]).is_err());
        assert_eq!(stream.len(), 16, "failed value is consumed, not lost");
        assert_eq!(stream.buffered(), 16, "failed chunk stays queued");
        assert_eq!(stream.num_partials(), 0, "hierarchy untouched by the failure");

        // The next push retries the queued chunk (old `==` trigger: wedged
        // forever — tail 17 never equals 16 again).
        stream.push(values[16]).unwrap();
        assert_eq!(stream.buffered(), 1, "backlog drained on retry");
        assert_eq!(stream.num_partials(), 1);

        stream.extend(&values[17..]).unwrap();
        assert_eq!(stream.len(), values.len());

        // Once recovered, state and output are bit-identical to a build that
        // never failed: boundaries stayed aligned to chunk_len multiples.
        let mut clean = StreamingBuilder::new(inner(4), 4, 16).unwrap();
        clean.extend(&values).unwrap();
        assert_eq!(
            boundary_bits(&stream.synopsis().unwrap()),
            boundary_bits(&clean.synopsis().unwrap()),
        );
    }

    /// Checkpoint invariants hold across an injected failure: the wedged
    /// state round-trips through checkpoint/resume and finishes the stream
    /// bit-identically to an uninterrupted build.
    #[test]
    fn checkpoint_after_failed_fit_resumes_bit_identically() {
        use std::sync::atomic::Ordering;

        let values: Vec<f64> = (0..96).map(|i| ((i * 7) % 23) as f64 * 0.5).collect();
        let (fallible, deny, _fits) = crate::testutil::FallibleEstimator::with_handles(3);
        let mut stream = StreamingBuilder::new(fallible, 3, 16).unwrap();
        stream.extend(&values[..31]).unwrap();
        deny.store(1, Ordering::SeqCst);
        assert!(stream.push(values[31]).is_err());
        assert_eq!(stream.len(), 32);
        assert_eq!(stream.buffered(), 16);

        // pushed / tail / levels all survive the round trip from the
        // post-failure state.
        let bytes = stream.checkpoint();
        let mut resumed = StreamingBuilder::resume(inner(3), &bytes).unwrap();
        assert_eq!(resumed.len(), 32);
        assert_eq!(resumed.buffered(), 16);
        resumed.extend(&values[32..]).unwrap();

        let mut clean = StreamingBuilder::new(inner(3), 3, 16).unwrap();
        clean.extend(&values).unwrap();
        assert_eq!(
            boundary_bits(&resumed.synopsis().unwrap()),
            boundary_bits(&clean.synopsis().unwrap()),
        );
    }

    /// `extend` consumes all or nothing: a non-finite value anywhere rejects
    /// the whole slice untouched; a mid-slice fit failure still consumes
    /// every value (queued for retry) and reports the error.
    #[test]
    fn extend_failure_semantics_are_all_or_nothing() {
        use std::sync::atomic::Ordering;

        // Non-finite anywhere → typed error, nothing consumed.
        let mut stream = StreamingBuilder::new(inner(3), 3, 8).unwrap();
        stream.extend(&[1.0, 2.0, 3.0]).unwrap();
        assert!(stream.extend(&[4.0, f64::NAN, 6.0]).is_err());
        assert_eq!(stream.len(), 3, "rejected slice is not consumed at all");
        assert_eq!(stream.buffered(), 3);

        // Mid-slice fit failure → error reported, but the whole slice is
        // consumed and the failed chunk is queued for retry.
        let values: Vec<f64> = (0..40).map(|i| (i % 5) as f64).collect();
        let (fallible, deny, fits) = crate::testutil::FallibleEstimator::with_handles(3);
        let mut stream = StreamingBuilder::new(fallible, 3, 8).unwrap();
        deny.store(1, Ordering::SeqCst);
        assert!(stream.extend(&values).is_err());
        assert_eq!(stream.len(), 40, "whole slice consumed despite the error");
        assert_eq!(stream.buffered(), 40, "first chunk's failure queues the rest");
        assert_eq!(fits.load(Ordering::SeqCst), 1, "drain stops at the failed chunk");

        // An empty retry nudge via extend(&[]) drains the full backlog.
        stream.extend(&[]).unwrap();
        assert_eq!(stream.buffered(), 0);
        let mut clean = StreamingBuilder::new(inner(3), 3, 8).unwrap();
        clean.extend(&values).unwrap();
        assert_eq!(
            boundary_bits(&stream.synopsis().unwrap()),
            boundary_bits(&clean.synopsis().unwrap()),
        );
    }

    /// `extend_collecting_chunks` taps exactly the chunks that were carried,
    /// oldest first, and matches what a serving store would need to merge.
    #[test]
    fn extend_collecting_chunks_reports_each_carried_chunk() {
        let values: Vec<f64> = (0..50).map(|i| ((i / 10) % 3) as f64 + 1.0).collect();
        let mut stream = StreamingBuilder::new(inner(3), 3, 16).unwrap();
        let mut chunks = Vec::new();
        stream.extend_collecting_chunks(&values, &mut Some(&mut chunks)).unwrap();
        assert_eq!(chunks.len(), 3, "50 values / 16 per chunk → 3 full chunks");
        assert!(chunks.iter().all(|c| c.domain() == 16));
        assert_eq!(stream.buffered(), 2);
    }
}
