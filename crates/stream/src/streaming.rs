//! One-pass streaming construction with logarithmic working memory.
//!
//! [`StreamingBuilder`] consumes a value stream left to right and maintains a
//! binary-counter hierarchy of partial synopses: every full chunk is fitted
//! by the inner [`Estimator`], and whenever two partial synopses of the same
//! rank exist they are merged ([`Synopsis::merge`]) and carried one level up
//! — the classical mergeable-summaries pattern (think LSM levels or
//! merge-sort runs). After `n` values the builder holds at most
//! `⌈log₂(n / chunk_len)⌉ + 1` partial synopses of `O(k)` pieces each.

use hist_core::{Error, Estimator, EstimatorBuilder, GreedyMerging, Result, Signal, Synopsis};
use hist_persist::{
    decode_stream_checkpoint, encode_stream_checkpoint, CodecError, CodecResult, StreamCheckpoint,
};

use crate::chunked::default_chunk_len;
use crate::merge_budget;

/// Incremental, single-pass synopsis construction over a value stream.
///
/// Values arrive through [`StreamingBuilder::push`]; a query-ready
/// [`Synopsis`] of everything seen so far is available at any time through
/// [`StreamingBuilder::synopsis`]. Working memory is logarithmic in the
/// stream length (a hierarchy of `O(k)`-piece partial synopses plus one
/// partially filled chunk buffer) — the stream itself is never stored.
pub struct StreamingBuilder {
    inner: Box<dyn Estimator>,
    budget: usize,
    chunk_len: usize,
    /// Binary-counter hierarchy: `levels[i]`, when occupied, summarizes
    /// `2^i` chunks, and deeper levels hold strictly older data.
    levels: Vec<Option<Synopsis>>,
    tail: Vec<f64>,
    pushed: usize,
}

impl StreamingBuilder {
    /// A streaming builder with piece budget `budget`, fitting every
    /// `chunk_len`-value chunk with `inner`.
    pub fn new(inner: Box<dyn Estimator>, budget: usize, chunk_len: usize) -> Result<Self> {
        if budget == 0 {
            return Err(Error::InvalidParameter {
                name: "budget",
                reason: "the streaming piece budget must be at least 1".into(),
            });
        }
        if chunk_len == 0 {
            return Err(Error::InvalidParameter {
                name: "chunk_len",
                reason: "chunks must cover at least one value".into(),
            });
        }
        Ok(Self {
            inner,
            budget,
            chunk_len,
            levels: Vec::new(),
            tail: Vec::with_capacity(chunk_len),
            pushed: 0,
        })
    }

    /// Appends one value to the stream.
    pub fn push(&mut self, value: f64) -> Result<()> {
        if !value.is_finite() {
            return Err(Error::NonFiniteValue { context: "StreamingBuilder::push" });
        }
        self.tail.push(value);
        self.pushed += 1;
        if self.tail.len() == self.chunk_len {
            let chunk = self.inner.fit(&Signal::from_slice(&self.tail)?)?;
            self.tail.clear();
            self.carry(chunk)?;
        }
        Ok(())
    }

    /// Appends a slice of values to the stream.
    pub fn extend(&mut self, values: &[f64]) -> Result<()> {
        for &v in values {
            self.push(v)?;
        }
        Ok(())
    }

    /// Number of values consumed so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.pushed
    }

    /// Whether no value has been pushed yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pushed == 0
    }

    /// Number of partial synopses currently held (the builder's working set).
    pub fn num_partials(&self) -> usize {
        self.levels.iter().filter(|l| l.is_some()).count()
    }

    /// The synopsis of everything pushed so far (domain `[0, len())`).
    ///
    /// Merges the level hierarchy oldest-first plus a fit of the partial tail
    /// chunk; errors when the stream is still empty. `O(k·log(n/chunk_len))`
    /// plus one inner fit of at most `chunk_len` values.
    pub fn synopsis(&self) -> Result<Synopsis> {
        let budget = merge_budget(self.budget);
        let mut acc: Option<Synopsis> = None;
        // Deeper levels are older; the stream order is oldest → newest.
        for level in self.levels.iter().rev().flatten() {
            acc = Some(match acc {
                None => level.clone(),
                Some(older) => older.merge(level, budget)?,
            });
        }
        if !self.tail.is_empty() {
            let tail = self.inner.fit(&Signal::from_slice(&self.tail)?)?;
            acc = Some(match acc {
                None => tail,
                Some(older) => older.merge(&tail, budget)?,
            });
        }
        match acc {
            Some(synopsis) => Ok(Synopsis::new("streaming", self.budget, synopsis.model().clone())),
            None => Err(Error::InvalidParameter {
                name: "stream",
                reason: "no values have been pushed yet".into(),
            }),
        }
    }

    /// Serializes the builder's resumable state — configuration, progress
    /// counter, the partially filled tail chunk and every partial synopsis of
    /// the binary-counter hierarchy — into a self-contained `AHISTCKP`
    /// container (see `hist-persist`).
    ///
    /// The inner [`Estimator`] is configuration, not state, and is *not*
    /// serialized; [`StreamingBuilder::resume`] takes it again. A build
    /// checkpointed at any split point and resumed with the same inner
    /// estimator consumes the rest of the stream into **bit-identical**
    /// output: all state is round-tripped exactly (floats as raw bits), and
    /// fitting/merging are deterministic.
    pub fn checkpoint(&self) -> Vec<u8> {
        encode_stream_checkpoint(&StreamCheckpoint {
            budget: self.budget,
            chunk_len: self.chunk_len,
            pushed: self.pushed,
            tail: self.tail.clone(),
            levels: self.levels.clone(),
        })
    }

    /// Reconstructs a builder from a [`StreamingBuilder::checkpoint`] byte
    /// container, resuming the one-pass build where it stopped.
    ///
    /// `inner` must be the same estimator configuration the original build
    /// used — it is what fits future chunks, so a different estimator yields
    /// a different (still valid) synopsis. On top of the codec's structural
    /// validation this re-checks the builder's cross-field invariants: a
    /// positive budget and chunk length, a tail strictly shorter than one
    /// chunk, and level domains consistent with `pushed` (level `i` summarizes
    /// exactly `2^i` chunks). Corrupt or hand-forged checkpoints fail with a
    /// typed error, never a panic.
    pub fn resume(inner: Box<dyn Estimator>, bytes: &[u8]) -> CodecResult<Self> {
        let checkpoint = decode_stream_checkpoint(bytes)?;
        let StreamCheckpoint { budget, chunk_len, pushed, tail, levels } = checkpoint;
        let mut builder = Self::new(inner, budget, chunk_len).map_err(CodecError::Invalid)?;
        if tail.len() >= chunk_len {
            return Err(CodecError::Invalid(Error::InvalidParameter {
                name: "tail",
                reason: format!(
                    "checkpoint tail holds {} values but chunks are {} long",
                    tail.len(),
                    chunk_len
                ),
            }));
        }
        let level_error = |rank: usize, domain: usize| {
            CodecError::Invalid(Error::InvalidParameter {
                name: "levels",
                reason: format!(
                    "level {rank} covers {domain} values but must cover chunk_len · 2^{rank}"
                ),
            })
        };
        let mut accounted = tail.len();
        for (rank, level) in levels.iter().enumerate() {
            let Some(synopsis) = level else { continue };
            // Overflow-checked chunk_len · 2^rank; a forged rank that
            // overflows usize can never match a real domain.
            let expected = 1usize
                .checked_shl(rank.min(u32::MAX as usize) as u32)
                .and_then(|chunks| chunk_len.checked_mul(chunks))
                .ok_or_else(|| level_error(rank, synopsis.domain()))?;
            if synopsis.domain() != expected {
                return Err(level_error(rank, synopsis.domain()));
            }
            accounted = accounted
                .checked_add(expected)
                .ok_or_else(|| level_error(rank, synopsis.domain()))?;
        }
        if accounted != pushed {
            return Err(CodecError::Invalid(Error::InvalidParameter {
                name: "pushed",
                reason: format!(
                    "checkpoint claims {pushed} consumed values but levels + tail cover {accounted}"
                ),
            }));
        }
        builder.levels = levels;
        builder.tail = tail;
        builder.pushed = pushed;
        Ok(builder)
    }

    /// Carries a freshly fitted chunk synopsis into the binary-counter
    /// hierarchy, merging with same-rank occupants on the way up.
    fn carry(&mut self, mut synopsis: Synopsis) -> Result<()> {
        let budget = merge_budget(self.budget);
        for level in &mut self.levels {
            match level.take() {
                None => {
                    *level = Some(synopsis);
                    return Ok(());
                }
                // The occupant is older, so it forms the left chunk.
                Some(older) => synopsis = older.merge(&synopsis, budget)?,
            }
        }
        self.levels.push(Some(synopsis));
        Ok(())
    }
}

/// The streaming construction as a registry [`Estimator`]: feeds the
/// signal's dense view through a [`StreamingBuilder`] whose chunks are
/// fitted by Algorithm 1 ([`GreedyMerging`]) with the builder's parameters.
///
/// Chunk length comes from [`EstimatorBuilder::chunk_len`], defaulting to
/// the [`default_chunk_len`] heuristic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamingMerging {
    builder: EstimatorBuilder,
}

impl StreamingMerging {
    /// A streaming estimator configured from the shared builder.
    pub fn new(builder: EstimatorBuilder) -> Self {
        Self { builder }
    }
}

impl Estimator for StreamingMerging {
    fn name(&self) -> &'static str {
        "streaming"
    }

    fn fit(&self, signal: &Signal) -> Result<Synopsis> {
        self.builder.validate()?;
        let values = signal.dense_values();
        let chunk_len =
            self.builder.chunk_len_value().unwrap_or_else(|| default_chunk_len(values.len()));
        let mut stream = StreamingBuilder::new(
            Box::new(GreedyMerging::new(self.builder)),
            self.builder.k(),
            chunk_len,
        )?;
        stream.extend(&values)?;
        stream.synopsis()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inner(k: usize) -> Box<dyn Estimator> {
        Box::new(GreedyMerging::new(EstimatorBuilder::new(k)))
    }

    #[test]
    fn streaming_matches_the_signal_it_consumed() {
        let values: Vec<f64> = (0..500).map(|i| ((i / 125) % 4) as f64 * 2.0 + 1.0).collect();
        let mut stream = StreamingBuilder::new(inner(4), 4, 32).unwrap();
        stream.extend(&values).unwrap();
        assert_eq!(stream.len(), 500);
        let synopsis = stream.synopsis().unwrap();
        assert_eq!(synopsis.domain(), 500);
        assert_eq!(synopsis.estimator(), "streaming");
        assert!(synopsis.num_pieces() <= merge_budget(4));
        let signal = Signal::from_dense(values).unwrap();
        assert!(synopsis.l2_error(&signal).unwrap() < 1e-9, "exact 4-step stream");
    }

    #[test]
    fn working_memory_stays_logarithmic() {
        let mut stream = StreamingBuilder::new(inner(3), 3, 8).unwrap();
        for i in 0..4_096 {
            stream.push((i % 13) as f64).unwrap();
        }
        // 512 chunks → at most ⌈log₂ 512⌉ + 1 = 10 occupied levels.
        assert!(stream.num_partials() <= 10, "{} partials", stream.num_partials());
    }

    #[test]
    fn synopsis_is_queryable_mid_chunk() {
        let mut stream = StreamingBuilder::new(inner(2), 2, 100).unwrap();
        for i in 0..37 {
            stream.push(i as f64).unwrap();
        }
        let synopsis = stream.synopsis().unwrap();
        assert_eq!(synopsis.domain(), 37, "partial tail chunk is included");
    }

    #[test]
    fn checkpoint_resume_matches_an_uninterrupted_build() {
        let values: Vec<f64> = (0..500).map(|i| ((i * 7) % 23) as f64 * 0.5 + 1.0).collect();
        // Split points cover: mid-tail, exact chunk boundary, several full
        // levels, and the very start.
        for split in [0usize, 13, 64, 200, 333, 499] {
            let mut uninterrupted = StreamingBuilder::new(inner(4), 4, 32).unwrap();
            uninterrupted.extend(&values).unwrap();

            let mut first_half = StreamingBuilder::new(inner(4), 4, 32).unwrap();
            first_half.extend(&values[..split]).unwrap();
            let bytes = first_half.checkpoint();
            drop(first_half);
            let mut resumed = StreamingBuilder::resume(inner(4), &bytes).unwrap();
            assert_eq!(resumed.len(), split);
            resumed.extend(&values[split..]).unwrap();

            let expected = uninterrupted.synopsis().unwrap();
            let actual = resumed.synopsis().unwrap();
            assert_eq!(actual.model(), expected.model(), "split {split}");
            let bits =
                |s: &Synopsis| s.boundary_masses().iter().map(|m| m.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&actual), bits(&expected), "split {split}: boundary bits");
        }
    }

    #[test]
    fn resume_rejects_inconsistent_checkpoints() {
        let mut stream = StreamingBuilder::new(inner(3), 3, 16).unwrap();
        for i in 0..50 {
            stream.push(i as f64).unwrap();
        }
        let good = stream.checkpoint();
        assert!(StreamingBuilder::resume(inner(3), &good).is_ok());

        // Arbitrary corruption is caught (typed error, no panic).
        let mut corrupt = good.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0xFF;
        assert!(StreamingBuilder::resume(inner(3), &corrupt).is_err());
        assert!(StreamingBuilder::resume(inner(3), &[]).is_err());

        // A forged checkpoint whose books don't balance is rejected even
        // though it decodes structurally: claim one extra consumed value.
        let mut checkpoint = hist_persist::decode_stream_checkpoint(&good).unwrap();
        checkpoint.pushed += 1;
        let forged = hist_persist::encode_stream_checkpoint(&checkpoint);
        assert!(StreamingBuilder::resume(inner(3), &forged).is_err());

        // A tail as long as a whole chunk can never occur (full chunks are
        // fitted and carried immediately).
        let mut checkpoint = hist_persist::decode_stream_checkpoint(&good).unwrap();
        checkpoint.pushed += 16 - checkpoint.tail.len();
        checkpoint.tail = vec![1.0; 16];
        let forged = hist_persist::encode_stream_checkpoint(&checkpoint);
        assert!(StreamingBuilder::resume(inner(3), &forged).is_err());
    }

    #[test]
    fn invalid_streams_are_rejected() {
        assert!(StreamingBuilder::new(inner(3), 0, 8).is_err());
        assert!(StreamingBuilder::new(inner(3), 3, 0).is_err());
        let mut stream = StreamingBuilder::new(inner(3), 3, 8).unwrap();
        assert!(stream.is_empty());
        assert!(stream.synopsis().is_err());
        assert!(stream.push(f64::NAN).is_err());
    }
}
