//! Parallel chunked construction: fit chunks on scoped worker threads,
//! tree-merge the results.
//!
//! [`ParallelChunkedFitter`] is [`ChunkedFitter`](crate::ChunkedFitter) with
//! the per-chunk fits actually running concurrently on
//! [`std::thread::scope`] workers (no external thread-pool dependency). The
//! chunking, the per-chunk estimator and the merge tree are *identical* to
//! the sequential fitter, and the worker partition is deterministic
//! (contiguous blocks of chunks, joined in order), so the fitted output is
//! **bit-identical** to [`ChunkedFitter`](crate::ChunkedFitter) for the same
//! chunk length — thread count only changes how construction is scheduled,
//! never what it produces. That equivalence is what the workspace-level
//! determinism suite asserts across 1, 2 and 8 threads.

use std::num::NonZeroUsize;

use hist_core::{Error, Estimator, Result, Signal, Synopsis};

use crate::chunked::merge_fitted_chunks;
use crate::ChunkedFitter;

/// Fit-per-chunk, merge-in-a-tree construction with the chunk fits sharded
/// across scoped worker threads.
///
/// Wraps any inner [`Estimator`] (`Send + Sync` is a supertrait, so every
/// estimator can fit chunks from worker threads). `fit` splits the
/// signal's dense view into contiguous chunks exactly like the sequential
/// [`ChunkedFitter`](crate::ChunkedFitter), distributes the chunks over up to
/// `threads` workers in contiguous blocks, joins the per-chunk synopses back
/// in domain order and tree-merges them down to `2k + 1` pieces.
///
/// ```
/// use hist_core::{Estimator, EstimatorBuilder, GreedyMerging, Signal};
/// use hist_stream::{ChunkedFitter, ParallelChunkedFitter};
///
/// let values: Vec<f64> = (0..600).map(|i| ((i / 150) % 3) as f64 + 1.0).collect();
/// let signal = Signal::from_dense(values).unwrap();
/// let builder = EstimatorBuilder::new(6);
///
/// let sequential = ChunkedFitter::new(Box::new(GreedyMerging::new(builder)), 6)
///     .with_chunk_len(75)
///     .fit(&signal)
///     .unwrap();
/// let parallel = ParallelChunkedFitter::new(Box::new(GreedyMerging::new(builder)), 6)
///     .with_chunk_len(75)
///     .with_threads(4)
///     .fit(&signal)
///     .unwrap();
///
/// // Same chunking ⇒ bit-identical pieces, whatever the thread count.
/// assert_eq!(parallel.model(), sequential.model());
/// assert_eq!(parallel.domain(), 600);
/// ```
pub struct ParallelChunkedFitter {
    /// The sequential fitter this one must reproduce bit for bit. Chunking,
    /// per-chunk fitting, validation and the merge tail all delegate to it,
    /// so the equivalence holds by construction — the only parallel-specific
    /// state is the worker count.
    sequential: ChunkedFitter,
    threads: Option<usize>,
}

impl ParallelChunkedFitter {
    /// A parallel chunked fitter with piece budget `budget`, fitting every
    /// chunk with `inner`, using the heuristic chunk length
    /// ([`default_chunk_len`](crate::default_chunk_len)) and one worker per
    /// available CPU.
    pub fn new(inner: Box<dyn Estimator>, budget: usize) -> Self {
        Self { sequential: ChunkedFitter::new(inner, budget), threads: None }
    }

    /// Overrides the chunk length (number of signal values per chunk).
    pub fn with_chunk_len(mut self, chunk_len: usize) -> Self {
        self.sequential = self.sequential.with_chunk_len(chunk_len);
        self
    }

    /// Overrides the worker-thread count. `1` degrades to a fully sequential
    /// fit on the calling thread; the output is the same either way.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// The piece budget `k` of the merged output.
    #[inline]
    pub fn budget(&self) -> usize {
        self.sequential.budget()
    }

    /// The worker count a fit over `chunks` chunks will actually use: the
    /// configured thread count (or the available parallelism when unset),
    /// capped at one worker per chunk.
    pub fn worker_count(&self, chunks: usize) -> usize {
        let configured = self.threads.unwrap_or_else(|| {
            std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
        });
        configured.min(chunks).max(1)
    }

    /// Fits every chunk independently — concurrently, on scoped worker
    /// threads — and returns the per-chunk synopses in domain order, exactly
    /// as the sequential
    /// [`ChunkedFitter::fit_chunks`](crate::ChunkedFitter::fit_chunks) would.
    pub fn fit_chunks(&self, signal: &Signal) -> Result<Vec<Synopsis>> {
        self.validate()?;
        let values = signal.dense_values();
        let chunks: Vec<&[f64]> =
            values.chunks(self.sequential.chunk_len_for(values.len())).collect();
        let workers = self.worker_count(chunks.len());
        if workers <= 1 {
            return self.sequential.fit_chunks(signal);
        }
        // Contiguous blocks of chunks per worker, joined in spawn order: the
        // flattened result is in domain order regardless of which worker
        // finishes first, and any error surfaces as the *first* failing
        // chunk — the same one the sequential fitter would report.
        let block = chunks.len().div_ceil(workers);
        let fits: Vec<Result<Synopsis>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .chunks(block)
                .map(|group| {
                    scope.spawn(move || {
                        group.iter().map(|chunk| self.sequential.fit_one(chunk)).collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("chunk-fit worker panicked")).collect()
        });
        fits.into_iter().collect()
    }

    fn validate(&self) -> Result<()> {
        self.sequential.validate()?;
        if self.threads == Some(0) {
            return Err(Error::InvalidParameter {
                name: "threads",
                reason: "parallel construction needs at least one worker thread".into(),
            });
        }
        Ok(())
    }
}

impl Estimator for ParallelChunkedFitter {
    fn name(&self) -> &'static str {
        "parallel-chunked"
    }

    fn fit(&self, signal: &Signal) -> Result<Synopsis> {
        let chunks = self.fit_chunks(signal)?;
        merge_fitted_chunks(self.name(), self.budget(), chunks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChunkedFitter;
    use hist_core::{EstimatorBuilder, GreedyMerging};

    fn step_signal(n: usize) -> Signal {
        let values: Vec<f64> = (0..n).map(|i| ((i / (n / 4).max(1)) % 4) as f64 + 1.0).collect();
        Signal::from_dense(values).unwrap()
    }

    fn parallel(k: usize) -> ParallelChunkedFitter {
        ParallelChunkedFitter::new(Box::new(GreedyMerging::new(EstimatorBuilder::new(k))), k)
    }

    fn sequential(k: usize) -> ChunkedFitter {
        ChunkedFitter::new(Box::new(GreedyMerging::new(EstimatorBuilder::new(k))), k)
    }

    #[test]
    fn parallel_fit_matches_sequential_bit_for_bit() {
        let signal = step_signal(400);
        for chunk_len in [1usize, 7, 50, 400] {
            let seq = sequential(4).with_chunk_len(chunk_len).fit(&signal).unwrap();
            for threads in [1usize, 2, 3, 8, 64] {
                let par = parallel(4)
                    .with_chunk_len(chunk_len)
                    .with_threads(threads)
                    .fit(&signal)
                    .unwrap();
                assert_eq!(
                    par.model(),
                    seq.model(),
                    "chunk_len {chunk_len} / {threads} threads diverged"
                );
                assert_eq!(par.target_k(), seq.target_k());
                assert_eq!(par.estimator(), "parallel-chunked");
            }
        }
    }

    #[test]
    fn fit_chunks_preserves_domain_order() {
        let signal = step_signal(400);
        let seq = sequential(4).with_chunk_len(100).fit_chunks(&signal).unwrap();
        let par = parallel(4).with_chunk_len(100).with_threads(3).fit_chunks(&signal).unwrap();
        assert_eq!(par.len(), 4);
        for (p, s) in par.iter().zip(&seq) {
            assert_eq!(p.model(), s.model());
        }
    }

    #[test]
    fn worker_count_is_capped_by_chunks() {
        let fitter = parallel(4).with_threads(16);
        assert_eq!(fitter.worker_count(3), 3);
        assert_eq!(fitter.worker_count(100), 16);
        assert_eq!(fitter.worker_count(0), 1);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let signal = step_signal(16);
        assert!(parallel(0).fit(&signal).is_err());
        assert!(parallel(3).with_chunk_len(0).fit(&signal).is_err());
        assert!(parallel(3).with_threads(0).fit(&signal).is_err());
    }
}
