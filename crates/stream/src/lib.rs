//! # hist-stream
//!
//! Mergeable and streaming synopses on top of the unified
//! `Estimator`/`Synopsis` API of `hist-core`.
//!
//! The merging framework of the source paper (Acharya, Diakonikolas, Hegde,
//! Li, Schmidt — PODS 2015) is naturally *composable*: a histogram fitted on
//! one chunk of a signal can be concatenated with a histogram fitted on the
//! next chunk and re-merged down to a piece budget with bounded error growth
//! ([`Synopsis::merge`](hist_core::Synopsis::merge)). This crate turns that
//! observation into three serving-oriented fitters:
//!
//! * [`ChunkedFitter`] — split the signal into chunks, fit each chunk
//!   independently (the sharded / embarrassingly parallel construction
//!   shape), then combine the per-chunk synopses pairwise in a merge tree;
//! * [`ParallelChunkedFitter`] — the same construction with the chunk fits
//!   actually running concurrently on scoped worker threads, bit-identical
//!   to the sequential fitter for the same chunking;
//! * [`StreamingBuilder`] — one-pass construction over a value stream with
//!   `O(k·log(n/chunk))` working memory, via a binary-counter hierarchy of
//!   partial synopses (the classical mergeable-summaries stream pattern),
//!   checkpointable mid-stream: [`StreamingBuilder::checkpoint`] serializes
//!   the resumable state (via the `hist-persist` binary format) and
//!   [`StreamingBuilder::resume`] continues the build in another process
//!   with bit-identical final output;
//! * [`SlidingWindow`] — maintain a synopsis of (approximately) the last `W`
//!   values of an unbounded stream by keeping per-bucket sub-synopses and
//!   evicting + re-merging as the window advances.
//!
//! All three produce an ordinary [`Synopsis`](hist_core::Synopsis), so the
//! serving side (`mass`, `cdf`, `quantile`, the batched variants) is exactly
//! the same as for a directly fitted estimator.
//!
//! ## Example: chunked fitting vs. direct fitting
//!
//! ```
//! use hist_core::{Estimator, EstimatorBuilder, GreedyMerging, Signal};
//! use hist_stream::ChunkedFitter;
//!
//! // A step signal over [0, 600).
//! let values: Vec<f64> = (0..600).map(|i| ((i / 150) % 3) as f64 + 1.0).collect();
//! let signal = Signal::from_dense(values).unwrap();
//!
//! let builder = EstimatorBuilder::new(6);
//! let direct = GreedyMerging::new(builder).fit(&signal).unwrap();
//!
//! // Fit the same signal in 4 chunks of 150 values and tree-merge the fits.
//! let chunked = ChunkedFitter::new(Box::new(GreedyMerging::new(builder)), 6)
//!     .with_chunk_len(150)
//!     .fit(&signal)
//!     .unwrap();
//!
//! assert_eq!(chunked.domain(), 600);
//! assert!(chunked.num_pieces() <= 13); // ≤ 2k + 1 after the final re-merge
//! // The step signal is exactly a 3-histogram, so both fits recover it.
//! assert!(direct.l2_error(&signal).unwrap() < 1e-9);
//! assert!(chunked.l2_error(&signal).unwrap() < 1e-9);
//! ```
//!
//! ## Example: maintaining a sliding window
//!
//! ```
//! use hist_core::{EstimatorBuilder, GreedyMerging};
//! use hist_stream::SlidingWindow;
//!
//! let inner = Box::new(GreedyMerging::new(EstimatorBuilder::new(4)));
//! // 8 buckets of 64 values: a window of the last ~512 values.
//! let mut window = SlidingWindow::new(inner, 4, 64, 8).unwrap();
//! for i in 0..2_000u32 {
//!     window.push((i % 97) as f64).unwrap();
//! }
//! let synopsis = window.synopsis().unwrap();
//! assert_eq!(synopsis.domain(), window.len());
//! assert!(window.len() >= window.capacity());
//! let median = synopsis.quantile(0.5).unwrap();
//! assert!(median < synopsis.domain());
//! ```

pub mod chunked;
pub mod parallel;
pub mod sliding;
pub mod streaming;

pub use chunked::{default_chunk_len, tree_merge, ChunkedFitter};
pub use parallel::ParallelChunkedFitter;
pub use sliding::SlidingWindow;
pub use streaming::{StreamingBuilder, StreamingMerging};

/// The piece budget used for intermediate and final merge steps: `2k + 1`,
/// mirroring the `O(k)` piece inflation Algorithm 1 trades for speed and
/// accuracy (a `(2 + 2/δ)k + γ ≈ 2k + 1`-piece output for budget `k`).
/// Public so harnesses driving [`tree_merge`] directly can reproduce the
/// fitters' budgets.
#[inline]
pub fn merge_budget(k: usize) -> usize {
    2 * k + 1
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared failure-injection estimator for the wedge-fix regression tests
    //! of [`crate::StreamingBuilder`] and [`crate::SlidingWindow`].

    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    use hist_core::{Error, Estimator, EstimatorBuilder, GreedyMerging, Result, Signal, Synopsis};

    /// An estimator that fails the next `deny` fits on command, then behaves
    /// exactly like [`GreedyMerging`]. The shared handles let a test inject a
    /// failure while the builder owns the estimator.
    pub(crate) struct FallibleEstimator {
        inner: GreedyMerging,
        deny: Arc<AtomicU64>,
        fits: Arc<AtomicU64>,
    }

    impl FallibleEstimator {
        /// A fallible estimator plus its `(deny, fit counter)` control
        /// handles: store `n` into `deny` to make the next `n` fits fail.
        pub(crate) fn with_handles(
            k: usize,
        ) -> (Box<dyn Estimator>, Arc<AtomicU64>, Arc<AtomicU64>) {
            let deny = Arc::new(AtomicU64::new(0));
            let fits = Arc::new(AtomicU64::new(0));
            let estimator = Self {
                inner: GreedyMerging::new(EstimatorBuilder::new(k)),
                deny: Arc::clone(&deny),
                fits: Arc::clone(&fits),
            };
            (Box::new(estimator), deny, fits)
        }
    }

    impl Estimator for FallibleEstimator {
        fn name(&self) -> &'static str {
            "fallible"
        }

        fn fit(&self, signal: &Signal) -> Result<Synopsis> {
            self.fits.fetch_add(1, Ordering::SeqCst);
            if self.deny.load(Ordering::SeqCst) > 0 {
                self.deny.fetch_sub(1, Ordering::SeqCst);
                return Err(Error::InvalidParameter {
                    name: "fallible",
                    reason: "injected fit failure".into(),
                });
            }
            self.inner.fit(signal)
        }
    }
}
