//! # hist-serve
//!
//! The concurrent serving layer of the workspace: keep one synopsis live
//! under heavy read traffic while a background writer refreshes it.
//!
//! Three pieces, all `std`-only:
//!
//! * [`SynopsisStore`] — an epoch/snapshot store. Readers clone an
//!   `Arc<Synopsis>` snapshot (wait-free in practice: the read-side lock is
//!   held only for the clone), writers serialize on a mutex and build the
//!   next synopsis *outside* every lock before installing it with a pointer
//!   swap. [`SynopsisStore::update_merge`] is the background-refitter cycle:
//!   merge a new adjacent-chunk synopsis into the served one
//!   ([`Synopsis::merge`](hist_core::Synopsis::merge)) and publish the
//!   result under live query traffic. The store is durable:
//!   [`SynopsisStore::save`] persists the served synopsis plus its epoch
//!   (via the `hist-persist` binary format) and [`SynopsisStore::open`]
//!   warm-starts a store across a process restart with the epoch sequence
//!   continuing monotonically.
//! * [`StoreMap`] — the multi-tenant layer: many keyed [`SynopsisStore`]s
//!   behind a shard-by-key-hash array of locks, with per-key
//!   publish/update/snapshot, key listing and eviction, an on-demand merged
//!   global view (`tree_merge` over every served key in canonical key
//!   order), and whole-map persistence (`AHISTMAP`) with per-key epochs
//!   monotone across restarts.
//! * [`QueryExecutor`] — a fixed [`ThreadPool`] sharding
//!   `mass_batch`/`quantile_batch` workloads into contiguous per-worker
//!   shards and recombining the answers in input order, identical to the
//!   unsharded batch.
//!
//! Construction parallelism lives next door in `hist-stream`
//! (`ParallelChunkedFitter`); this crate is the read side. The multi-thread
//! stress suite (`tests/concurrent_serve.rs` at the workspace root) drives
//! both at once: writer threads `update_merge`-ing chunks into a store while
//! reader threads assert every observed snapshot still satisfies the
//! serving invariants.
//!
//! ## Example: queries riding over a live refit
//!
//! ```
//! use std::sync::Arc;
//! use hist_core::{Estimator, EstimatorBuilder, GreedyMerging, Signal};
//! use hist_serve::{QueryExecutor, SynopsisStore};
//!
//! let estimator = GreedyMerging::new(EstimatorBuilder::new(4));
//! let chunk = move |level: f64| {
//!     let values: Vec<f64> = (0..128).map(|i| level + ((i / 64) % 2) as f64).collect();
//!     estimator.fit(&Signal::from_dense(values).unwrap()).unwrap()
//! };
//!
//! let store = Arc::new(SynopsisStore::with_initial(chunk(1.0)));
//! let executor = QueryExecutor::new(4);
//!
//! // A background writer merges new chunks in while readers keep serving.
//! let writer = {
//!     let store = Arc::clone(&store);
//!     std::thread::spawn(move || {
//!         for level in [2.0, 3.0] {
//!             store.update_merge(&chunk(level), 9).unwrap();
//!         }
//!     })
//! };
//!
//! // Every read sees *some* complete snapshot, never a torn one.
//! let snapshot = store.snapshot().unwrap();
//! let ps: Vec<f64> = (0..50).map(|i| i as f64 / 49.0).collect();
//! let quantiles = executor.quantile_batch(snapshot.synopsis(), &ps).unwrap();
//! assert_eq!(quantiles, snapshot.quantile_batch(&ps).unwrap());
//!
//! writer.join().unwrap();
//! assert_eq!(store.snapshot().unwrap().domain(), 3 * 128);
//! ```

pub mod executor;
pub mod maintenance;
pub mod pool;
pub mod store;
pub mod store_map;

pub use executor::QueryExecutor;
pub use maintenance::{MaintenancePolicy, MaintenanceStats, MaintenanceWorker};
pub use pool::ThreadPool;
pub use store::{Snapshot, SynopsisStore};
pub use store_map::{validate_key, MergedView, StoreMap, StoreMapStats, DEFAULT_KEY};
