//! Sharded batch-query execution over a fixed thread pool.
//!
//! [`QueryExecutor`] splits a `mass_batch`/`quantile_batch`/`cdf_batch`
//! workload into contiguous shards, runs every shard on the pool against a
//! shared `Arc<Synopsis>` snapshot and concatenates the shard results back
//! in input order. The `Arc` shares the synopsis' flat serving state (the
//! structure-of-arrays query kernel) across all workers without copying.
//! Sharding is pure scheduling: each query is answered by exactly the same
//! `Synopsis` batch kernel the direct call would use, so the combined output
//! is identical to the unsharded batch (and the batches are themselves
//! pointwise-identical to `mass`/`quantile`/`cdf` — see the property
//! harness).

use std::sync::mpsc;
use std::sync::Arc;

use hist_core::{Interval, Result, Synopsis};

use crate::pool::ThreadPool;

/// A fixed-size worker pool answering batched synopsis queries in parallel.
///
/// ```
/// use std::sync::Arc;
/// use hist_core::{Estimator, EstimatorBuilder, GreedyMerging, Interval, Signal};
/// use hist_serve::QueryExecutor;
///
/// let values: Vec<f64> = (0..512).map(|i| ((i / 128) % 4) as f64 + 1.0).collect();
/// let signal = Signal::from_dense(values).unwrap();
/// let synopsis =
///     GreedyMerging::new(EstimatorBuilder::new(4)).fit(&signal).unwrap().into_shared();
///
/// let executor = QueryExecutor::new(4);
/// let ranges: Vec<Interval> =
///     (0..100).map(|i| Interval::new(i, i + 400).unwrap()).collect();
/// let sharded = executor.mass_batch(&synopsis, &ranges).unwrap();
///
/// // Identical to the direct batch, in input order.
/// assert_eq!(sharded, synopsis.mass_batch(&ranges).unwrap());
///
/// let quantiles = executor.quantile_batch(&synopsis, &[0.25, 0.5, 0.75]).unwrap();
/// assert_eq!(quantiles, synopsis.quantile_batch(&[0.25, 0.5, 0.75]).unwrap());
/// ```
pub struct QueryExecutor {
    pool: ThreadPool,
}

impl QueryExecutor {
    /// An executor with `threads` pool workers (at least one).
    pub fn new(threads: usize) -> Self {
        Self { pool: ThreadPool::new(threads) }
    }

    /// Number of pool workers.
    #[inline]
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// [`Synopsis::mass_batch`] sharded across the pool: same results, same
    /// input order, same error on the first invalid range.
    pub fn mass_batch(&self, synopsis: &Arc<Synopsis>, ranges: &[Interval]) -> Result<Vec<f64>> {
        self.run_sharded(synopsis, ranges, |synopsis, shard| synopsis.mass_batch(shard))
    }

    /// [`Synopsis::quantile_batch`] sharded across the pool: same results,
    /// same input order, same error on the first invalid fraction.
    pub fn quantile_batch(&self, synopsis: &Arc<Synopsis>, ps: &[f64]) -> Result<Vec<usize>> {
        self.run_sharded(synopsis, ps, |synopsis, shard| synopsis.quantile_batch(shard))
    }

    /// [`Synopsis::cdf_batch`] sharded across the pool: same results, same
    /// input order, same error on the first out-of-domain index (the batch
    /// kernel itself is bit-identical to mapping [`Synopsis::cdf`]).
    pub fn cdf_batch(&self, synopsis: &Arc<Synopsis>, xs: &[usize]) -> Result<Vec<f64>> {
        self.run_sharded(synopsis, xs, |synopsis, shard| synopsis.cdf_batch(shard))
    }

    /// Splits `queries` into one contiguous shard per worker, runs `run` on
    /// each shard concurrently and concatenates the results in shard (=
    /// input) order. Contiguous sharding keeps error reporting deterministic:
    /// the first shard that fails contains the globally first invalid query.
    fn run_sharded<Q, R>(
        &self,
        synopsis: &Arc<Synopsis>,
        queries: &[Q],
        run: fn(&Synopsis, &[Q]) -> Result<Vec<R>>,
    ) -> Result<Vec<R>>
    where
        Q: Copy + Send + 'static,
        R: Send + 'static,
    {
        // Explicit empty-batch early return: `threads.min(0)` used to fall
        // into the serial path below, which still paid a full dynamic
        // dispatch to answer nothing — and hid the degenerate case from the
        // sharding logic. An empty batch has exactly one right answer.
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        let shards = self.pool.threads().min(queries.len());
        if shards <= 1 {
            return run(synopsis, queries);
        }
        let shard_len = queries.len().div_ceil(shards);
        let shard_count = queries.len().div_ceil(shard_len);
        let (sender, receiver) = mpsc::channel();
        for (index, shard) in queries.chunks(shard_len).enumerate() {
            let sender = sender.clone();
            let synopsis = Arc::clone(synopsis);
            let shard: Vec<Q> = shard.to_vec();
            self.pool.execute(move || {
                let result = run(&synopsis, &shard);
                let _ = sender.send((index, result));
            });
        }
        drop(sender);
        let mut slots: Vec<Option<Result<Vec<R>>>> = (0..shard_count).map(|_| None).collect();
        for (index, result) in receiver {
            slots[index] = Some(result);
        }
        let mut out = Vec::with_capacity(queries.len());
        for slot in slots {
            out.extend(slot.expect("a pool worker died before reporting its shard")?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hist_core::{Estimator, EstimatorBuilder, GreedyMerging, Signal};

    fn shared_synopsis(n: usize) -> Arc<Synopsis> {
        let values: Vec<f64> = (0..n).map(|i| ((i / 64) % 5) as f64 + 0.5).collect();
        GreedyMerging::new(EstimatorBuilder::new(5))
            .fit(&Signal::from_dense(values).unwrap())
            .unwrap()
            .into_shared()
    }

    #[test]
    fn sharded_batches_match_direct_batches() {
        let synopsis = shared_synopsis(1024);
        // Unsorted, overlapping, duplicated ranges across every pool size.
        let ranges: Vec<Interval> = (0..257)
            .map(|i| {
                let a = (i * 37) % 900;
                Interval::new(a, a + (i * 13) % 100).unwrap()
            })
            .collect();
        let ps: Vec<f64> = (0..193).map(|i| (i % 101) as f64 / 100.0).collect();
        for threads in [1usize, 2, 4, 8] {
            let executor = QueryExecutor::new(threads);
            assert_eq!(executor.threads(), threads);
            assert_eq!(
                executor.mass_batch(&synopsis, &ranges).unwrap(),
                synopsis.mass_batch(&ranges).unwrap(),
                "{threads} threads"
            );
            assert_eq!(
                executor.quantile_batch(&synopsis, &ps).unwrap(),
                synopsis.quantile_batch(&ps).unwrap(),
                "{threads} threads"
            );
            let xs: Vec<usize> = (0..301).map(|i| (i * 17) % 1024).collect();
            let direct: Vec<f64> = xs.iter().map(|&x| synopsis.cdf(x).unwrap()).collect();
            assert_eq!(executor.cdf_batch(&synopsis, &xs).unwrap(), direct, "{threads} threads");
        }
    }

    #[test]
    fn tiny_batches_and_empty_batches_work() {
        let synopsis = shared_synopsis(256);
        let executor = QueryExecutor::new(8);
        assert_eq!(executor.mass_batch(&synopsis, &[]).unwrap(), Vec::<f64>::new());
        assert_eq!(executor.quantile_batch(&synopsis, &[]).unwrap(), Vec::<usize>::new());
        // Fewer queries than workers: one shard per query.
        let ranges = [Interval::new(0, 10).unwrap(), Interval::new(5, 200).unwrap()];
        assert_eq!(
            executor.mass_batch(&synopsis, &ranges).unwrap(),
            synopsis.mass_batch(&ranges).unwrap()
        );
    }

    #[test]
    fn empty_and_singleton_batches_across_every_pool_size() {
        // Regression for the empty-slice sharding path: every pool size must
        // answer empty batches with an empty vector (no pool dispatch) and
        // singleton batches identically to the direct call.
        let synopsis = shared_synopsis(128);
        for threads in [1usize, 2, 4, 8] {
            let executor = QueryExecutor::new(threads);
            assert_eq!(executor.mass_batch(&synopsis, &[]).unwrap(), Vec::<f64>::new());
            assert_eq!(executor.quantile_batch(&synopsis, &[]).unwrap(), Vec::<usize>::new());
            let one_range = [Interval::new(7, 90).unwrap()];
            assert_eq!(
                executor.mass_batch(&synopsis, &one_range).unwrap(),
                synopsis.mass_batch(&one_range).unwrap(),
                "{threads} threads"
            );
            let one_p = [0.625];
            assert_eq!(
                executor.quantile_batch(&synopsis, &one_p).unwrap(),
                synopsis.quantile_batch(&one_p).unwrap(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn invalid_queries_error_like_the_direct_batch() {
        let synopsis = shared_synopsis(256);
        let executor = QueryExecutor::new(4);
        let mut ranges: Vec<Interval> = (0..64).map(|i| Interval::new(i, i + 1).unwrap()).collect();
        ranges.push(Interval::new(0, 9_999).unwrap()); // out of domain
        assert!(executor.mass_batch(&synopsis, &ranges).is_err());
        let mut ps = vec![0.5; 64];
        ps.push(7.0);
        assert!(executor.quantile_batch(&synopsis, &ps).is_err());
    }
}
