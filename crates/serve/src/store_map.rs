//! The multi-tenant keyed store: many epoch-stamped [`SynopsisStore`]s
//! behind a shard-by-key-hash array of locks.
//!
//! ROADMAP's "millions of users" becomes literal here: one distribution per
//! tenant/metric *key* (per-endpoint latency fleets, per-customer metrics),
//! each key owning its own [`SynopsisStore`] with the same epoch/snapshot
//! discipline as single-store serving — readers clone an `Arc` snapshot,
//! writers serialize per key, and *different* keys never contend on the same
//! lock beyond their shard's `HashMap`.
//!
//! Sharding: the key is FNV-1a-hashed onto one of a power-of-two number of
//! shards, each shard a `RwLock<HashMap<String, Arc<SynopsisStore>>>`. The
//! shard lock is held only for map lookups/insertions (a clone of the
//! store's `Arc`), never across merge work or queries, so the hot path of a
//! keyed read is: hash, shard read-lock, `Arc` clone, unlock, query.
//!
//! Cross-key fan-in reuses the mergeable-summaries property (Agarwal et
//! al., PODS'12): [`StoreMap::merged_view`] collects every key's served
//! synopsis in canonical key order and `tree_merge`s them into one global
//! view on demand — per-key synopses summarize adjacent chunks of a global
//! signal, concatenated in ascending key order.

use std::collections::HashMap;
use std::path::Path;
use std::sync::{mpsc, Arc, RwLock};
use std::time::Duration;

use hist_core::{Error, Result, Synopsis};
use hist_persist::{load_store_map, save_store_map, PersistResult, StoreMapEntry};
use hist_stream::tree_merge;

use crate::maintenance::{MaintenancePolicy, MaintenanceWorker};
use crate::store::{Snapshot, SynopsisStore};

/// The key a keyless (protocol v1) operation targets: a v2 server treats
/// single-store traffic as traffic on this key, so a v1 client and a keyed
/// client observing `DEFAULT_KEY` see the same store.
pub const DEFAULT_KEY: &str = "default";

/// Default number of shards (must be a power of two): enough that 8–16
/// serving threads rarely collide on a shard lock, cheap enough to hold in
/// an empty map.
const DEFAULT_SHARDS: usize = 64;

type Shard = RwLock<HashMap<String, Arc<SynopsisStore>>>;

/// Checks a tenant/metric key against the encoding rules shared with the
/// persistence container and the wire protocol: non-empty UTF-8 of at most
/// [`hist_persist::MAX_KEY_BYTES`] bytes.
pub fn validate_key(key: &str) -> Result<()> {
    hist_persist::validate_key(key)
        .map_err(|e| hist_core::Error::InvalidParameter { name: "key", reason: e.to_string() })
}

/// Store-wide summary of a [`StoreMap`]: key count, served-key count, total
/// pieces across served synopses, the epoch range, and the aggregated
/// maintenance accounting (merge/refit counters and the outstanding
/// error-budget accumulators, summed over every key).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StoreMapStats {
    /// Number of keys present (served or not).
    pub keys: u64,
    /// Number of keys currently serving a synopsis.
    pub served: u64,
    /// Total piece count across all served synopses.
    pub total_pieces: u64,
    /// Smallest per-key epoch (0 if any key has never published, or no keys).
    pub min_epoch: u64,
    /// Largest per-key epoch (0 if no keys).
    pub max_epoch: u64,
    /// Total `update_merge` merges absorbed, summed over every key.
    pub merges: u64,
    /// Background maintenance refits published, summed over every key.
    pub refits: u64,
    /// Cumulative mass of every merged-in chunk, summed over every key.
    pub merged_mass: f64,
    /// Outstanding merge error (`ℓ₂`, accumulated since each key's last
    /// refit), summed over every key — the store-wide view of how much of
    /// the error budget is currently spent.
    pub merge_error: f64,
}

/// A merged global view over every served key, built on demand by
/// [`StoreMap::merged_view`].
#[derive(Debug, Clone)]
pub struct MergedView {
    /// Number of keys that contributed a synopsis.
    pub keys: u64,
    /// Largest epoch among the contributing snapshots.
    pub epoch: u64,
    /// The tree-merged global synopsis.
    pub synopsis: Synopsis,
}

/// A keyed namespace of [`SynopsisStore`]s: per-key publish/update/snapshot
/// with the single-store guarantees, key listing and eviction, an on-demand
/// merged global view, and whole-map persistence (`AHISTMAP`).
///
/// ```
/// use hist_core::{FittedModel, Histogram, Synopsis};
/// use hist_serve::StoreMap;
///
/// let syn = |level: f64| {
///     let h = Histogram::constant(64, level).unwrap();
///     Synopsis::new("constant", 1, FittedModel::Histogram(h))
/// };
///
/// let map = StoreMap::new();
/// map.publish("api/login", syn(2.0)).unwrap();
/// map.publish("api/search", syn(5.0)).unwrap();
///
/// assert_eq!(map.keys(), ["api/login", "api/search"]);
/// let snap = map.snapshot("api/search").unwrap();
/// assert_eq!(snap.epoch(), 1);
/// assert_eq!(snap.total_mass(), 5.0 * 64.0);
///
/// // The global view tree-merges every key's synopsis in key order.
/// let merged = map.merged_view(8).unwrap().unwrap();
/// assert_eq!(merged.keys, 2);
/// assert_eq!(merged.synopsis.domain(), 128);
///
/// assert!(map.drop_key("api/login"));
/// assert_eq!(map.len(), 1);
/// ```
/// The maintenance side of a [`StoreMap`]: the policy every store shares,
/// the background worker refits run on, and — when the policy carries a
/// wall-clock refit bound — the ticker thread that sweeps idle keys.
#[derive(Debug)]
struct MaintenanceEngine {
    policy: MaintenancePolicy,
    worker: Arc<MaintenanceWorker>,
    /// Present iff the policy has a `max_wall_between_refits`: merge-counted
    /// triggers are evaluated on the write path, but an idle key's writer
    /// never comes back to evaluate anything, so the wall-clock bound needs
    /// its own clock. Held only so disabling/replacing the engine stops and
    /// joins the thread.
    _ticker: Option<MaintenanceTicker>,
}

/// A background thread periodically sweeping every store for a due refit —
/// the evaluation point of the policy's wall-clock trigger on keys whose
/// writers have paused. Stopped (and joined) on drop via its stop channel.
struct MaintenanceTicker {
    stop: mpsc::Sender<()>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for MaintenanceTicker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MaintenanceTicker").finish_non_exhaustive()
    }
}

impl MaintenanceTicker {
    /// Spawns a sweeper waking every `tick`: each wake-up runs
    /// `try_begin_refit` on every store and schedules the due ones on
    /// `worker`. The claim-then-schedule protocol is the same one the write
    /// path uses, so a sweep racing a writer never double-schedules.
    fn spawn(shards: Arc<[Shard]>, worker: Arc<MaintenanceWorker>, tick: Duration) -> Self {
        let (stop, wake) = mpsc::channel::<()>();
        let handle = std::thread::Builder::new()
            .name("hist-maintenance-ticker".into())
            .spawn(move || {
                // A send (or a dropped sender) ends the loop immediately;
                // otherwise each timeout is one sweep.
                while let Err(mpsc::RecvTimeoutError::Timeout) = wake.recv_timeout(tick) {
                    for shard in shards.iter() {
                        let stores: Vec<Arc<SynopsisStore>> =
                            shard.read().expect("shard lock poisoned").values().cloned().collect();
                        for store in stores {
                            if store.try_begin_refit() {
                                worker.schedule(store);
                            }
                        }
                    }
                }
            })
            .expect("spawning the maintenance ticker thread");
        Self { stop, handle: Some(handle) }
    }
}

impl Drop for MaintenanceTicker {
    fn drop(&mut self) {
        let _ = self.stop.send(());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[derive(Debug)]
pub struct StoreMap {
    /// Shared with the maintenance ticker thread, which holds its own
    /// `Arc` clone so it can sweep after the map handle moves.
    shards: Arc<[Shard]>,
    /// Set by [`StoreMap::enable_maintenance`]; applied to every existing
    /// store at enable time and to new stores at creation.
    maintenance: RwLock<Option<MaintenanceEngine>>,
}

impl Default for StoreMap {
    fn default() -> Self {
        Self::new()
    }
}

impl StoreMap {
    /// An empty map with the default shard count.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// An empty map with at least `shards` shards (rounded up to a power of
    /// two, minimum 1).
    pub fn with_shards(shards: usize) -> Self {
        let count = shards.max(1).next_power_of_two();
        Self {
            shards: (0..count).map(|_| Shard::default()).collect(),
            maintenance: RwLock::new(None),
        }
    }

    /// Turns on self-tuning maintenance for every key: the validated
    /// `policy` is attached to every existing store (re-baselining each on
    /// its served synopsis) and to every store created later, and a
    /// background [`MaintenanceWorker`] with `threads` refit threads carries
    /// out the refits [`StoreMap::update_merge`] triggers.
    /// If the policy carries a wall-clock refit bound
    /// ([`MaintenancePolicy::max_wall_interval`]), a ticker thread is also
    /// started that periodically sweeps every key for a due refit — the
    /// only way an *idle* key (no writes arriving) can ever be refreshed.
    pub fn enable_maintenance(&self, policy: MaintenancePolicy, threads: usize) -> Result<()> {
        policy.validate()?;
        let worker = Arc::new(MaintenanceWorker::new(threads));
        let ticker = policy.max_wall_between_refits().map(|max| {
            // Sweep a few times per interval so an idle key is refreshed
            // within ~max + tick of falling due, without busy-spinning for
            // long intervals.
            let tick = (max / 8).clamp(Duration::from_millis(5), Duration::from_millis(500));
            MaintenanceTicker::spawn(Arc::clone(&self.shards), Arc::clone(&worker), tick)
        });
        let mut guard = self.maintenance.write().expect("maintenance lock poisoned");
        *guard = Some(MaintenanceEngine { policy: policy.clone(), worker, _ticker: ticker });
        drop(guard);
        for shard in self.shards.iter() {
            let stores: Vec<Arc<SynopsisStore>> =
                shard.read().expect("shard lock poisoned").values().cloned().collect();
            for store in stores {
                store.set_maintenance(Some(policy.clone()))?;
            }
        }
        Ok(())
    }

    /// The maintenance policy the map applies, if enabled.
    pub fn maintenance_policy(&self) -> Option<MaintenancePolicy> {
        self.maintenance
            .read()
            .expect("maintenance lock poisoned")
            .as_ref()
            .map(|engine| engine.policy.clone())
    }

    /// Schedules a background refit of `store` if its budget is spent and no
    /// refit is already in flight.
    fn maybe_schedule_refit(&self, store: &Arc<SynopsisStore>) {
        let guard = self.maintenance.read().expect("maintenance lock poisoned");
        if let Some(engine) = guard.as_ref() {
            if store.try_begin_refit() {
                engine.worker.schedule(Arc::clone(store));
            }
        }
    }

    /// A map already serving `synopsis` at [`DEFAULT_KEY`], epoch 1 — the
    /// keyed equivalent of [`SynopsisStore::with_initial`].
    pub fn with_initial(synopsis: Synopsis) -> Self {
        let map = Self::new();
        map.publish(DEFAULT_KEY, synopsis).expect("DEFAULT_KEY is a valid key");
        map
    }

    /// FNV-1a over the key bytes, masked to the shard count: deterministic
    /// across processes and platforms, dependency-free, and good enough at
    /// scattering short metric names.
    fn shard(&self, key: &str) -> &Shard {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &byte in key.as_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.shards[(hash as usize) & (self.shards.len() - 1)]
    }

    /// The store behind `key`, if present.
    pub fn store(&self, key: &str) -> Option<Arc<SynopsisStore>> {
        self.shard(key).read().expect("shard lock poisoned").get(key).cloned()
    }

    /// The store behind `key`, created empty on first use. Fails only on an
    /// invalid key (empty or longer than [`hist_persist::MAX_KEY_BYTES`]).
    pub fn store_or_create(&self, key: &str) -> Result<Arc<SynopsisStore>> {
        validate_key(key)?;
        if let Some(store) = self.store(key) {
            return Ok(store);
        }
        let store = {
            let mut shard = self.shard(key).write().expect("shard lock poisoned");
            Arc::clone(shard.entry(key.to_owned()).or_default())
        };
        // New stores inherit the map's maintenance policy. (A concurrent
        // creator may apply it too — attaching is idempotent on an empty
        // store.)
        if let Some(policy) = self.maintenance_policy() {
            store.set_maintenance(Some(policy))?;
        }
        Ok(store)
    }

    /// Publishes a fully built synopsis under `key` (creating the key on
    /// first use) and returns its new epoch.
    pub fn publish(&self, key: &str, synopsis: Synopsis) -> Result<u64> {
        Ok(self.store_or_create(key)?.publish(synopsis))
    }

    /// Per-key [`SynopsisStore::update_merge`]: merges `chunk` into `key`'s
    /// served synopsis (re-merged to `budget` pieces), creating the key on
    /// first use, and returns the new epoch. If the map's maintenance is
    /// enabled and this merge spends the key's error budget, a background
    /// refit is scheduled before returning.
    ///
    /// Validation runs *before* any key is created: a failed merge on a
    /// fresh key (zero budget, invalid key) must not leave an empty phantom
    /// key behind in `keys()`/`ListKeys`.
    pub fn update_merge(&self, key: &str, chunk: &Synopsis, budget: usize) -> Result<u64> {
        validate_key(key)?;
        if budget == 0 {
            return Err(Error::InvalidParameter {
                name: "budget",
                reason: "the merge budget must be at least 1".into(),
            });
        }
        let store = match self.store(key) {
            // Existing key: a failed merge leaves the key as it was.
            Some(store) => store,
            // Fresh key: with the key and budget already validated, merging
            // into the (empty or concurrently seeded) store cannot fail in a
            // way that strands a phantom — an empty store publishes the
            // chunk as is, and a concurrently seeded store was legitimately
            // created by that concurrent writer.
            None => self.store_or_create(key)?,
        };
        let epoch = store.update_merge(chunk, budget)?;
        self.maybe_schedule_refit(&store);
        Ok(epoch)
    }

    /// The snapshot `key` currently serves, or `None` for an absent key or a
    /// key that has published nothing.
    pub fn snapshot(&self, key: &str) -> Option<Snapshot> {
        self.store(key)?.snapshot()
    }

    /// The last published epoch of `key` (0 for an absent or never-published
    /// key).
    pub fn epoch(&self, key: &str) -> u64 {
        self.store(key).map_or(0, |store| store.epoch())
    }

    /// Whether `key` is present (even if it has published nothing yet).
    pub fn contains_key(&self, key: &str) -> bool {
        self.store(key).is_some()
    }

    /// Every key, sorted ascending — the canonical listing order of the wire
    /// protocol and the persistence container.
    pub fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self
            .shards
            .iter()
            .flat_map(|shard| {
                shard.read().expect("shard lock poisoned").keys().cloned().collect::<Vec<_>>()
            })
            .collect();
        keys.sort_unstable();
        keys
    }

    /// Number of keys present.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|shard| shard.read().expect("shard lock poisoned").len()).sum()
    }

    /// Whether no keys are present.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|shard| shard.read().expect("shard lock poisoned").is_empty())
    }

    /// Evicts `key` and its store; returns whether it existed. Readers
    /// holding a snapshot of the dropped store keep it alive until they let
    /// go — eviction never tears an in-flight query.
    pub fn drop_key(&self, key: &str) -> bool {
        self.shard(key).write().expect("shard lock poisoned").remove(key).is_some()
    }

    /// Largest per-key epoch across the map (0 for an empty map): the
    /// store-wide "newest publish" stamp used by store-wide responses.
    pub fn max_epoch(&self) -> u64 {
        self.shards
            .iter()
            .flat_map(|shard| {
                shard
                    .read()
                    .expect("shard lock poisoned")
                    .values()
                    .map(|store| store.epoch())
                    .collect::<Vec<_>>()
            })
            .max()
            .unwrap_or(0)
    }

    /// Store-wide summary: key/served counts, total pieces and the epoch
    /// range, gathered shard by shard (each per-key snapshot individually
    /// consistent).
    pub fn store_stats(&self) -> StoreMapStats {
        let mut stats = StoreMapStats::default();
        let mut min_epoch = u64::MAX;
        for shard in self.shards.iter() {
            let guard = shard.read().expect("shard lock poisoned");
            for store in guard.values() {
                stats.keys += 1;
                let epoch = store.epoch();
                min_epoch = min_epoch.min(epoch);
                stats.max_epoch = stats.max_epoch.max(epoch);
                if let Some(snapshot) = store.snapshot() {
                    stats.served += 1;
                    stats.total_pieces += snapshot.num_pieces() as u64;
                }
                let maintenance = store.maintenance_stats();
                stats.merges += maintenance.merges;
                stats.refits += maintenance.refits;
                stats.merged_mass += maintenance.merged_mass;
                stats.merge_error += maintenance.accumulated_error;
            }
        }
        if stats.keys > 0 {
            stats.min_epoch = min_epoch;
        }
        stats
    }

    /// The merging coordinator: fans every served key's synopsis into one
    /// on-demand global view via `tree_merge`, contributors taken in
    /// canonical (ascending key) order — per-key synopses summarize
    /// adjacent chunks of a global signal, concatenated key by key.
    ///
    /// Returns `Ok(None)` if no key serves a synopsis. Fails on a zero
    /// `budget` (rejected by `tree_merge`). Each contributing snapshot is
    /// individually consistent; the view is not a single atomic cut across
    /// keys (a writer may publish to key B while key A's snapshot is taken).
    pub fn merged_view(&self, budget: usize) -> Result<Option<MergedView>> {
        let mut contributors: Vec<(String, Snapshot)> = Vec::new();
        for shard in self.shards.iter() {
            let guard = shard.read().expect("shard lock poisoned");
            for (key, store) in guard.iter() {
                if let Some(snapshot) = store.snapshot() {
                    contributors.push((key.clone(), snapshot));
                }
            }
        }
        if contributors.is_empty() {
            return Ok(None);
        }
        contributors.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let keys = contributors.len() as u64;
        let epoch = contributors.iter().map(|(_, s)| s.epoch()).max().unwrap_or(0);
        let synopses: Vec<Synopsis> =
            contributors.iter().map(|(_, s)| s.synopsis().as_ref().clone()).collect();
        let synopsis = tree_merge(synopses, budget)?;
        Ok(Some(MergedView { keys, epoch, synopsis }))
    }

    /// Persists the whole map to `path` as an `AHISTMAP` container (atomic
    /// write-then-rename): one entry per key with its epoch and served
    /// synopsis. Each per-key `(epoch, synopsis)` pair is captured under
    /// that store's writer mutex, so every entry is individually consistent
    /// even under concurrent publishes; entries land in canonical key order,
    /// so equal maps save to bit-identical files.
    pub fn save(&self, path: impl AsRef<Path>) -> PersistResult<()> {
        let mut entries = Vec::new();
        for shard in self.shards.iter() {
            let guard = shard.read().expect("shard lock poisoned");
            for (key, store) in guard.iter() {
                let (epoch, snapshot) = store.persisted_state();
                entries.push(StoreMapEntry {
                    key: key.clone(),
                    epoch,
                    synopsis: snapshot.map(|s| s.synopsis().as_ref().clone()),
                });
            }
        }
        save_store_map(path, &entries)
    }

    /// Reopens a map previously [`StoreMap::save`]d: every key serves its
    /// persisted synopsis at its persisted epoch, and each key's epoch
    /// sequence continues monotonically across the restart. Per-key forged
    /// epochs (upper half of the `u64` range) are rejected exactly as
    /// [`SynopsisStore::open`] rejects them.
    pub fn open(path: impl AsRef<Path>) -> PersistResult<Self> {
        let persisted = load_store_map(path)?;
        let map = Self::new();
        for entry in persisted.entries {
            let store = SynopsisStore::resume(entry.epoch, entry.synopsis)?;
            map.shard(&entry.key)
                .write()
                .expect("shard lock poisoned")
                .insert(entry.key, Arc::new(store));
        }
        Ok(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hist_core::{FittedModel, Histogram};

    fn syn(domain: usize, level: f64) -> Synopsis {
        let h = Histogram::constant(domain, level).unwrap();
        Synopsis::new("constant", 1, FittedModel::Histogram(h))
    }

    #[test]
    fn keys_are_independent_stores() {
        let map = StoreMap::new();
        assert_eq!(map.publish("a", syn(8, 1.0)).unwrap(), 1);
        assert_eq!(map.publish("b", syn(8, 2.0)).unwrap(), 1, "each key has its own epochs");
        assert_eq!(map.publish("a", syn(8, 3.0)).unwrap(), 2);
        assert_eq!(map.epoch("a"), 2);
        assert_eq!(map.epoch("b"), 1);
        assert_eq!(map.epoch("absent"), 0);
        assert_eq!(map.snapshot("a").unwrap().total_mass(), 3.0 * 8.0);
        assert_eq!(map.snapshot("b").unwrap().total_mass(), 2.0 * 8.0);
        assert!(map.snapshot("absent").is_none());
    }

    #[test]
    fn invalid_keys_are_rejected_with_a_typed_error() {
        let map = StoreMap::new();
        assert!(map.publish("", syn(8, 1.0)).is_err());
        let long = "k".repeat(hist_persist::MAX_KEY_BYTES + 1);
        assert!(map.publish(&long, syn(8, 1.0)).is_err());
        assert!(map.update_merge(&long, &syn(8, 1.0), 4).is_err());
        assert!(map.is_empty(), "failed publishes must not create keys");
        let exact = "k".repeat(hist_persist::MAX_KEY_BYTES);
        assert!(map.publish(&exact, syn(8, 1.0)).is_ok());
    }

    #[test]
    fn listing_and_eviction_cover_every_shard() {
        let map = StoreMap::with_shards(4);
        // More keys than shards, so listing must cross shard boundaries.
        for i in 0..32 {
            map.publish(&format!("key/{i:02}"), syn(4, i as f64 + 1.0)).unwrap();
        }
        let keys = map.keys();
        assert_eq!(keys.len(), 32);
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "keys list in sorted order");
        assert_eq!(map.len(), 32);
        assert!(map.drop_key("key/07"));
        assert!(!map.drop_key("key/07"), "double drop reports absence");
        assert_eq!(map.len(), 31);
        assert!(!map.contains_key("key/07"));
    }

    #[test]
    fn dropped_stores_stay_alive_for_snapshot_holders() {
        let map = StoreMap::new();
        map.publish("ephemeral", syn(16, 2.0)).unwrap();
        let snapshot = map.snapshot("ephemeral").unwrap();
        assert!(map.drop_key("ephemeral"));
        assert_eq!(snapshot.total_mass(), 2.0 * 16.0, "held snapshots outlive eviction");
    }

    #[test]
    fn merged_view_concatenates_in_key_order() {
        let map = StoreMap::new();
        assert!(map.merged_view(8).unwrap().is_none(), "empty maps have no view");
        map.publish("b", syn(8, 2.0)).unwrap();
        map.publish("a", syn(8, 1.0)).unwrap();
        map.store_or_create("c-empty").unwrap(); // present but serving nothing
        let view = map.merged_view(16).unwrap().unwrap();
        assert_eq!(view.keys, 2, "only served keys contribute");
        assert_eq!(view.synopsis.domain(), 16);
        // Key order fixes the concatenation order: "a" (mass 8) precedes
        // "b" (mass 16), so the CDF at the seam is 8/24.
        assert_eq!(view.synopsis.total_mass(), 24.0);
        assert_eq!(view.synopsis.cdf(7).unwrap(), 8.0 / 24.0);
        assert!(map.merged_view(0).is_err(), "zero budgets are rejected");
    }

    #[test]
    fn store_stats_summarize_the_map() {
        let map = StoreMap::new();
        assert_eq!(map.store_stats(), StoreMapStats::default());
        map.publish("a", syn(8, 1.0)).unwrap();
        map.publish("a", syn(8, 1.5)).unwrap();
        map.publish("b", syn(8, 2.0)).unwrap();
        map.store_or_create("never-published").unwrap();
        let stats = map.store_stats();
        assert_eq!(stats.keys, 3);
        assert_eq!(stats.served, 2);
        assert_eq!(stats.total_pieces, 2);
        assert_eq!(stats.min_epoch, 0, "the never-published key floors the range");
        assert_eq!(stats.max_epoch, 2);
    }

    #[test]
    fn save_and_open_round_trip_every_key() {
        let dir = std::env::temp_dir().join("hist-serve-tests").join("store-map");
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let path = dir.join("map.snapshot");

        let map = StoreMap::new();
        map.publish("a", syn(8, 1.0)).unwrap();
        map.publish("a", syn(8, 4.0)).unwrap();
        map.publish("b", syn(16, 2.0)).unwrap();
        map.store_or_create("empty").unwrap();
        map.save(&path).unwrap();

        let reopened = StoreMap::open(&path).unwrap();
        assert_eq!(reopened.keys(), ["a", "b", "empty"]);
        assert_eq!(reopened.epoch("a"), 2);
        assert_eq!(reopened.snapshot("a").unwrap().total_mass(), 4.0 * 8.0);
        assert!(reopened.snapshot("empty").is_none());
        // Epochs continue monotonically per key after the restart.
        assert_eq!(reopened.publish("a", syn(8, 5.0)).unwrap(), 3);
        assert_eq!(reopened.publish("b", syn(16, 3.0)).unwrap(), 2);

        // Saving the reopened map reproduces the file bit for bit (canonical
        // entry order, deterministic encodings) once the epochs match again.
        let copy = StoreMap::open(&path).unwrap();
        let second = dir.join("map2.snapshot");
        copy.save(&second).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), std::fs::read(&second).unwrap());
    }

    #[test]
    fn forged_per_key_epochs_fail_to_open() {
        let dir = std::env::temp_dir().join("hist-serve-tests").join("store-map-forged");
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let path = dir.join("forged.snapshot");
        let entries = vec![StoreMapEntry {
            key: "evil".into(),
            epoch: u64::MAX,
            synopsis: Some(syn(8, 1.0)),
        }];
        std::fs::write(&path, hist_persist::encode_store_map(&entries).unwrap()).unwrap();
        assert!(StoreMap::open(&path).is_err());
    }
}
