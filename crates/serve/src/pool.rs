//! A minimal fixed-size thread pool on `std::sync::mpsc` (the build
//! environment is offline, so no external pool crates).
//!
//! Workers share one job receiver behind a mutex — the classical shape: a
//! worker holds the lock only while blocked in `recv`, runs the job with the
//! lock released, and exits when the sender side is dropped. [`ThreadPool`]
//! joins all workers on drop, so no detached threads outlive the pool.

use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed set of worker threads executing submitted jobs in FIFO order.
pub struct ThreadPool {
    sender: Option<mpsc::Sender<Job>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                thread::Builder::new()
                    .name(format!("hist-serve-worker-{i}"))
                    .spawn(move || loop {
                        let job = receiver.lock().expect("job queue lock poisoned").recv();
                        match job {
                            Ok(job) => job(),
                            Err(_) => break, // pool dropped: drain and exit
                        }
                    })
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self { sender: Some(sender), workers }
    }

    /// Number of worker threads.
    #[inline]
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job; some idle worker will pick it up.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.sender
            .as_ref()
            .expect("pool sender lives until drop")
            .send(Box::new(job))
            .expect("pool workers live until drop");
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Close the channel so workers see `Err` after the queue drains…
        drop(self.sender.take());
        // …then wait for them; a worker that panicked in a job is reported.
        for worker in self.workers.drain(..) {
            if worker.join().is_err() && !thread::panicking() {
                panic!("a pool worker panicked while running a job");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn jobs_run_on_every_worker_count() {
        for threads in [1usize, 2, 8] {
            let pool = ThreadPool::new(threads);
            assert_eq!(pool.threads(), threads);
            let counter = Arc::new(AtomicUsize::new(0));
            for _ in 0..100 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
            drop(pool); // joins workers, so all jobs have run
            assert_eq!(counter.load(Ordering::SeqCst), 100);
        }
    }

    #[test]
    fn zero_threads_degrades_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
    }
}
