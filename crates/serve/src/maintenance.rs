//! Self-tuning maintenance: an error-budget policy deciding *when* the cheap
//! merge steps a store pays in steady state ([`SynopsisStore::update_merge`])
//! have degraded the served synopsis enough to be worth a refit, and a
//! background worker carrying the refits out.
//!
//! The economics come straight from the paper's merge/refit trade-off:
//! merging an adjacent-chunk synopsis into the served one is ~two orders of
//! magnitude cheaper than refitting, but every budgeted merge spends accuracy
//! — the greedy re-merge's accepted cost is exactly
//! `‖merged − left ⊕ right‖₂²` ([`hist_core::MergeStats`]). The store sums
//! the per-merge `ℓ₂` deltas; by the triangle inequality that sum
//! upper-bounds how far the served synopsis has drifted from the
//! concatenation of everything it absorbed. [`MaintenancePolicy`] turns the
//! accumulator into a decision: once the spent error exceeds the budget (and
//! a minimum merge interval has passed, or a maximum interval forces the
//! issue), [`SynopsisStore::try_begin_refit`] claims a refit and a
//! [`MaintenanceWorker`] rebuilds the synopsis by `tree_merge`-ing the
//! retained chunk synopses down to the compaction budget — a balanced merge
//! tree whose error does not carry the left-deep chain's accumulated drift —
//! publishing the result through the normal epoch-stamped path. Readers are
//! never blocked (they only ever touch the snapshot pointer) and no epoch is
//! lost (refits serialize with writers on the store's writer mutex).

use std::sync::Arc;
use std::time::{Duration, Instant};

use hist_core::{Error, EstimatorBuilder, Result, Synopsis};

use crate::pool::ThreadPool;
use crate::store::SynopsisStore;

/// When to stop paying cheap merges and schedule a refit: the error-budget
/// policy of a [`SynopsisStore`] / [`crate::StoreMap`].
///
/// A refit triggers once **both** hold:
///
/// * at least `min_merges_between_refits` merges happened since the last
///   refit (back-pressure: a refit is never scheduled on every update), and
/// * the accumulated merge error exceeds `error_budget`, **or** the optional
///   `max_merges_between_refits` interval has elapsed (a freshness bound for
///   streams whose merges are individually cheap but numerous).
///
/// Both intervals above are *merge-counted*, so a key whose writer goes
/// quiet keeps serving its drifted left-deep merge chain indefinitely. The
/// optional **wall-clock** bound `max_wall_between_refits` closes that gap:
/// once that much time has passed since the key's last refit (or baseline)
/// with at least one merge absorbed, a refit is due regardless of the merge
/// counters — deliberately bypassing the `min_merges_between_refits`
/// back-pressure, because for an idle key freshness is the whole point.
/// Wall-clock triggers are evaluated by the write path *and* by the
/// [`crate::StoreMap`] maintenance ticker, which sweeps keys whose writers
/// have paused.
///
/// The refit `tree_merge`s the retained chunk synopses down to
/// `compaction_budget` pieces; `max_retained_chunks` bounds how many chunks
/// are kept between refits (oldest pairs are folded together beyond it).
#[derive(Debug, Clone, PartialEq)]
pub struct MaintenancePolicy {
    error_budget: f64,
    min_merges_between_refits: u64,
    max_merges_between_refits: Option<u64>,
    max_wall_between_refits: Option<Duration>,
    compaction_budget: usize,
    max_retained_chunks: usize,
}

/// Default retained-chunk cap: deep enough that steady-state refits see a
/// genuinely balanced tree, small enough to bound per-key memory.
const DEFAULT_RETAINED_CHUNKS: usize = 64;

impl MaintenancePolicy {
    /// A policy refitting once the accumulated merge error exceeds
    /// `error_budget`, compacting to `compaction_budget` pieces; interval
    /// bounds default to `min = 1`, no forced maximum, and a retained-chunk
    /// cap of 64.
    pub fn new(error_budget: f64, compaction_budget: usize) -> Self {
        Self {
            error_budget,
            min_merges_between_refits: 1,
            max_merges_between_refits: None,
            max_wall_between_refits: None,
            compaction_budget,
            max_retained_chunks: DEFAULT_RETAINED_CHUNKS,
        }
    }

    /// Requires at least `min` merges between refits.
    pub fn min_interval(mut self, min: u64) -> Self {
        self.min_merges_between_refits = min;
        self
    }

    /// Forces a refit every `max` merges even while under the error budget.
    pub fn max_interval(mut self, max: u64) -> Self {
        self.max_merges_between_refits = Some(max);
        self
    }

    /// Forces a refit once `max` wall-clock time has passed since the last
    /// refit with at least one merge absorbed — the freshness bound for keys
    /// whose writers go quiet (merge-counted intervals never fire there).
    pub fn max_wall_interval(mut self, max: Duration) -> Self {
        self.max_wall_between_refits = Some(max);
        self
    }

    /// Caps how many chunk synopses are retained between refits.
    pub fn retained_chunks(mut self, cap: usize) -> Self {
        self.max_retained_chunks = cap;
        self
    }

    /// The `ℓ₂` error budget.
    #[inline]
    pub fn error_budget(&self) -> f64 {
        self.error_budget
    }

    /// Minimum merges between refits.
    #[inline]
    pub fn min_merges_between_refits(&self) -> u64 {
        self.min_merges_between_refits
    }

    /// Forced-refit merge interval, when set.
    #[inline]
    pub fn max_merges_between_refits(&self) -> Option<u64> {
        self.max_merges_between_refits
    }

    /// Forced-refit wall-clock interval, when set.
    #[inline]
    pub fn max_wall_between_refits(&self) -> Option<Duration> {
        self.max_wall_between_refits
    }

    /// The piece budget refits compact to.
    #[inline]
    pub fn compaction_budget(&self) -> usize {
        self.compaction_budget
    }

    /// The retained-chunk cap.
    #[inline]
    pub fn max_retained_chunks(&self) -> usize {
        self.max_retained_chunks
    }

    /// Validates the knobs: positive finite error budget, non-zero
    /// compaction budget, non-inverted intervals, a foldable retained cap.
    pub fn validate(&self) -> Result<()> {
        if !self.error_budget.is_finite() || self.error_budget <= 0.0 {
            return Err(Error::InvalidParameter {
                name: "error_budget",
                reason: format!("must be a positive finite number, got {}", self.error_budget),
            });
        }
        if self.compaction_budget == 0 {
            return Err(Error::InvalidParameter {
                name: "compaction_budget",
                reason: "a refit must keep at least one piece".into(),
            });
        }
        if let Some(max) = self.max_merges_between_refits {
            if max == 0 || max < self.min_merges_between_refits {
                return Err(Error::InvalidParameter {
                    name: "refit_interval",
                    reason: format!(
                        "inverted interval: max {max} must be ≥ min {} and ≥ 1",
                        self.min_merges_between_refits
                    ),
                });
            }
        }
        if self.max_wall_between_refits.is_some_and(|max| max.is_zero()) {
            return Err(Error::InvalidParameter {
                name: "max_wall_between_refits",
                reason: "the wall-clock refit interval must be non-zero".into(),
            });
        }
        if self.max_retained_chunks < 2 {
            return Err(Error::InvalidParameter {
                name: "max_retained_chunks",
                reason: "maintenance needs at least two retained chunks to fold".into(),
            });
        }
        Ok(())
    }

    /// Builds the policy an [`EstimatorBuilder`]'s maintenance knobs
    /// describe, validated: `None` when the builder has no maintenance error
    /// budget set (maintenance off), with the compaction budget defaulting
    /// to `2k + 1` — the piece count Algorithm 1 targets for the builder's
    /// `k`.
    pub fn from_builder(builder: &EstimatorBuilder) -> Result<Option<Self>> {
        let Some(error_budget) = builder.maintenance_error_budget_value() else {
            return Ok(None);
        };
        let policy = Self {
            error_budget,
            min_merges_between_refits: builder.refit_min_interval_value(),
            max_merges_between_refits: builder.refit_max_interval_value(),
            max_wall_between_refits: builder.refit_wall_interval_value(),
            compaction_budget: builder.compaction_budget_value().unwrap_or(2 * builder.k() + 1),
            max_retained_chunks: builder.retained_chunks_value(),
        };
        policy.validate()?;
        Ok(Some(policy))
    }

    /// Whether a synopsis with `merges_since_refit` merges and
    /// `accumulated_error` spent since its last refit is due for one,
    /// considering only the merge-counted triggers (as if no wall-clock bound
    /// were set). Equivalent to [`MaintenancePolicy::due_with_elapsed`] with
    /// an unknown elapsed time.
    pub fn due(&self, merges_since_refit: u64, accumulated_error: f64) -> bool {
        self.due_with_elapsed(merges_since_refit, accumulated_error, None)
    }

    /// [`MaintenancePolicy::due`] with the wall clock included:
    /// `elapsed_since_refit` is the time since the key's last refit (or
    /// baseline), `None` when unknown. The wall-clock trigger needs only one
    /// absorbed merge — it deliberately bypasses the
    /// `min_merges_between_refits` back-pressure, because its purpose is
    /// exactly the idle key that will never accumulate more merges.
    pub fn due_with_elapsed(
        &self,
        merges_since_refit: u64,
        accumulated_error: f64,
        elapsed_since_refit: Option<Duration>,
    ) -> bool {
        let counted = merges_since_refit >= self.min_merges_between_refits
            && (accumulated_error > self.error_budget
                || self.max_merges_between_refits.is_some_and(|max| merges_since_refit >= max));
        let wall = merges_since_refit >= 1
            && self
                .max_wall_between_refits
                .zip(elapsed_since_refit)
                .is_some_and(|(max, elapsed)| elapsed >= max);
        counted || wall
    }
}

/// Per-synopsis maintenance accounting, kept by every [`SynopsisStore`] and
/// surfaced through [`SynopsisStore::maintenance_stats`] /
/// [`crate::StoreMapStats`] / the wire protocol's store stats.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MaintenanceStats {
    /// Total `update_merge` merges absorbed (over the store's lifetime).
    pub merges: u64,
    /// Merges since the last refit (or since the first publish).
    pub merges_since_refit: u64,
    /// Cumulative mass of every merged-in chunk.
    pub merged_mass: f64,
    /// Summed per-merge `ℓ₂` deltas since the last refit — the error-budget
    /// accumulator the policy triggers on.
    pub accumulated_error: f64,
    /// Summed per-merge `ℓ₂` deltas over the store's lifetime (monotone).
    pub total_error: f64,
    /// Background refits published.
    pub refits: u64,
    /// Epoch of the last refit publication (0 if none yet).
    pub last_refit_epoch: u64,
    /// Chunk synopses currently retained for the next refit.
    pub retained_chunks: u64,
}

/// The per-store maintenance bookkeeping behind the store's maintenance
/// mutex: the policy (if enabled), the counters, and the retained chunk
/// decomposition of the served synopsis.
///
/// Invariant: when `policy` is set and `retained` is non-empty, the retained
/// synopses concatenate (in order) to exactly the served domain — update
/// paths append to both under the store's writer mutex.
#[derive(Debug, Default)]
pub(crate) struct MaintenanceState {
    pub(crate) policy: Option<MaintenancePolicy>,
    pub(crate) merges: u64,
    pub(crate) merges_since_refit: u64,
    pub(crate) merged_mass: f64,
    pub(crate) accumulated_error: f64,
    pub(crate) total_error: f64,
    pub(crate) refits: u64,
    pub(crate) last_refit_epoch: u64,
    /// When the key was last refitted or re-baselined — the reference point
    /// of the policy's wall-clock trigger. `None` until the first baseline.
    pub(crate) last_refit_at: Option<Instant>,
    pub(crate) retained: Vec<Synopsis>,
    pub(crate) inflight: bool,
}

impl MaintenanceState {
    pub(crate) fn stats(&self) -> MaintenanceStats {
        MaintenanceStats {
            merges: self.merges,
            merges_since_refit: self.merges_since_refit,
            merged_mass: self.merged_mass,
            accumulated_error: self.accumulated_error,
            total_error: self.total_error,
            refits: self.refits,
            last_refit_epoch: self.last_refit_epoch,
            retained_chunks: self.retained.len() as u64,
        }
    }

    /// Appends a merged-in chunk to the retained decomposition, folding the
    /// two oldest entries together once the policy's cap is exceeded. Called
    /// with the store's writer mutex held, so the decomposition stays in
    /// lockstep with the served synopsis.
    pub(crate) fn retain_chunk(&mut self, chunk: Synopsis) {
        let Some(policy) = &self.policy else {
            return;
        };
        let (cap, budget) = (policy.max_retained_chunks, policy.compaction_budget);
        self.retained.push(chunk);
        if self.retained.len() > cap {
            let first = self.retained.remove(0);
            let second = self.retained.remove(0);
            match first.merge(&second, budget) {
                Ok(folded) => self.retained.insert(0, folded),
                // A fold failure would desynchronize the decomposition from
                // the served domain; drop the decomposition instead (the next
                // baseline reseed restores it) rather than serve a bad refit.
                Err(_) => self.retained.clear(),
            }
        }
    }

    /// Re-baselines the retained decomposition on `served` — after a direct
    /// publish, a refit, or enabling the policy on a live store.
    pub(crate) fn rebaseline(&mut self, served: Option<Synopsis>) {
        self.retained.clear();
        if self.policy.is_some() {
            if let Some(synopsis) = served {
                self.retained.push(synopsis);
            }
        }
        self.merges_since_refit = 0;
        self.accumulated_error = 0.0;
        self.last_refit_at = Some(Instant::now());
    }
}

/// A background worker running maintenance refits on the serve
/// [`ThreadPool`], so they never run on (or block) a query or ingest thread.
///
/// Scheduling is idempotent per store: [`SynopsisStore::try_begin_refit`]
/// claims an in-flight slot before a job is enqueued, so at most one refit
/// per store is queued or running at any time.
pub struct MaintenanceWorker {
    pool: ThreadPool,
}

impl std::fmt::Debug for MaintenanceWorker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MaintenanceWorker").field("threads", &self.pool.threads()).finish()
    }
}

impl MaintenanceWorker {
    /// A worker with `threads` refit threads (at least one).
    pub fn new(threads: usize) -> Self {
        Self { pool: ThreadPool::new(threads) }
    }

    /// Number of refit threads.
    #[inline]
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Enqueues a refit of `store`. The caller must have claimed the store's
    /// in-flight slot via [`SynopsisStore::try_begin_refit`]; the job
    /// releases it when the refit publishes (or is found unnecessary).
    pub fn schedule(&self, store: Arc<SynopsisStore>) {
        self.pool.execute(move || {
            // A failed refit (nothing retained, policy raced off) already
            // cleared the in-flight flag and left the served synopsis as it
            // was; the counters keep accumulating toward the next attempt.
            let _ = store.run_refit();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_validation_rejects_hostile_knobs() {
        assert!(MaintenancePolicy::new(1.0, 9).validate().is_ok());
        // Zero, negative, NaN and infinite budgets are typed errors.
        for budget in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = MaintenancePolicy::new(budget, 9).validate().unwrap_err();
            assert!(matches!(err, Error::InvalidParameter { name: "error_budget", .. }), "{err}");
        }
        let err = MaintenancePolicy::new(1.0, 0).validate().unwrap_err();
        assert!(matches!(err, Error::InvalidParameter { name: "compaction_budget", .. }));
        // Inverted and degenerate intervals.
        let err = MaintenancePolicy::new(1.0, 9).min_interval(10).max_interval(3);
        assert!(err.validate().is_err(), "max < min must be rejected");
        assert!(MaintenancePolicy::new(1.0, 9).max_interval(0).validate().is_err());
        assert!(MaintenancePolicy::new(1.0, 9).retained_chunks(1).validate().is_err());
        assert!(MaintenancePolicy::new(1.0, 9).min_interval(3).max_interval(3).validate().is_ok());
        // Wall-clock intervals must be non-zero.
        let err = MaintenancePolicy::new(1.0, 9).max_wall_interval(Duration::ZERO);
        assert!(err.validate().is_err(), "zero wall interval must be rejected");
        let ok = MaintenancePolicy::new(1.0, 9).max_wall_interval(Duration::from_millis(50));
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn due_requires_min_interval_and_budget_or_max() {
        let policy = MaintenancePolicy::new(2.0, 9).min_interval(3).max_interval(100);
        assert!(!policy.due(0, 10.0), "min interval gates even a blown budget");
        assert!(!policy.due(2, 10.0));
        assert!(policy.due(3, 10.0));
        assert!(!policy.due(3, 1.0), "under budget, under max: not due");
        assert!(!policy.due(99, 2.0), "budget is exceeded strictly");
        assert!(policy.due(100, 0.0), "max interval forces a refit");
    }

    #[test]
    fn wall_clock_trigger_fires_for_idle_keys() {
        let secs = Duration::from_secs;
        let policy = MaintenancePolicy::new(100.0, 9).min_interval(10).max_wall_interval(secs(60));
        // Without the wall clock nothing below is due (budget huge, min 10).
        assert!(!policy.due(1, 0.0));
        // Wall trigger: fires once elapsed ≥ max, bypassing min_interval —
        // an idle key will never reach the merge-counted thresholds.
        assert!(policy.due_with_elapsed(1, 0.0, Some(secs(60))));
        assert!(policy.due_with_elapsed(1, 0.0, Some(secs(61))));
        assert!(!policy.due_with_elapsed(1, 0.0, Some(secs(59))), "not elapsed yet");
        // But never with nothing absorbed: a refit needs at least one merge
        // since the last baseline, or there is nothing new to rebuild.
        assert!(!policy.due_with_elapsed(0, 0.0, Some(secs(3600))));
        // Unknown elapsed time (or no wall bound) → merge-counted rules only.
        assert!(!policy.due_with_elapsed(1, 0.0, None));
        let unbounded = MaintenancePolicy::new(100.0, 9).min_interval(10);
        assert!(!unbounded.due_with_elapsed(1, 0.0, Some(secs(3600))));
        // The merge-counted triggers still work alongside the wall bound.
        assert!(policy.due_with_elapsed(10, 200.0, Some(secs(1))));
    }

    #[test]
    fn builder_knobs_round_trip_into_a_policy() {
        let builder = EstimatorBuilder::new(5);
        assert!(MaintenancePolicy::from_builder(&builder).unwrap().is_none());
        let builder = EstimatorBuilder::new(5)
            .maintenance_error_budget(4.5)
            .refit_interval(2, Some(64))
            .retained_chunks(16);
        let policy = MaintenancePolicy::from_builder(&builder).unwrap().unwrap();
        assert_eq!(policy.error_budget(), 4.5);
        assert_eq!(policy.min_merges_between_refits(), 2);
        assert_eq!(policy.max_merges_between_refits(), Some(64));
        assert_eq!(policy.max_wall_between_refits(), None);
        assert_eq!(policy.compaction_budget(), 11, "defaults to 2k + 1");
        assert_eq!(policy.max_retained_chunks(), 16);
        let explicit = MaintenancePolicy::from_builder(
            &EstimatorBuilder::new(5).maintenance_error_budget(4.5).compaction_budget(7),
        )
        .unwrap()
        .unwrap();
        assert_eq!(explicit.compaction_budget(), 7);
        let timed = MaintenancePolicy::from_builder(
            &EstimatorBuilder::new(5)
                .maintenance_error_budget(4.5)
                .refit_wall_interval(Duration::from_millis(250)),
        )
        .unwrap()
        .unwrap();
        assert_eq!(timed.max_wall_between_refits(), Some(Duration::from_millis(250)));
        // Hostile builder knobs surface as typed errors through from_builder.
        let hostile = EstimatorBuilder::new(5).maintenance_error_budget(-1.0);
        assert!(MaintenancePolicy::from_builder(&hostile).is_err());
        let zero_wall = EstimatorBuilder::new(5)
            .maintenance_error_budget(1.0)
            .refit_wall_interval(Duration::ZERO);
        assert!(MaintenancePolicy::from_builder(&zero_wall).is_err());
        let inverted =
            EstimatorBuilder::new(5).maintenance_error_budget(1.0).refit_interval(9, Some(2));
        assert!(MaintenancePolicy::from_builder(&inverted).is_err());
    }
}
