//! The epoch/snapshot synopsis store: one writer path, wait-free-in-practice
//! readers.
//!
//! [`SynopsisStore`] holds the *currently served* synopsis behind an
//! [`Arc`]. Readers take a [`Snapshot`] — an epoch-stamped `Arc` clone — and
//! query it for as long as they like; the snapshot is immutable, so a reader
//! can never observe a torn or partially updated synopsis. Writers build the
//! next synopsis *outside* every lock (merging can be `O(k log k)` work) and
//! install it with a pointer swap, so the read-side lock is only ever held
//! for an `Arc` clone or a pointer store — never across merge work.

use std::ops::Deref;
use std::path::Path;
use std::sync::{Arc, Mutex, RwLock};

use hist_core::{Error, Result, Synopsis};
use hist_persist::{load_store_snapshot, save_store_snapshot, PersistResult};
use hist_stream::tree_merge;

use crate::maintenance::{MaintenancePolicy, MaintenanceState, MaintenanceStats};

/// An epoch-stamped, immutable view of the synopsis a [`SynopsisStore`]
/// served at some instant.
///
/// Cloning a snapshot is a reference-count bump. Snapshots implement
/// [`Deref`] to [`Synopsis`], so they answer `mass`/`cdf`/`quantile` (and the
/// batched variants) directly.
#[derive(Debug, Clone)]
pub struct Snapshot {
    epoch: u64,
    synopsis: Arc<Synopsis>,
}

impl Snapshot {
    /// The publication epoch: strictly increasing across publishes, starting
    /// at 1 for the first synopsis a store serves.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The shared synopsis itself, for callers that want to hold or ship the
    /// `Arc` without the epoch stamp.
    #[inline]
    pub fn synopsis(&self) -> &Arc<Synopsis> {
        &self.synopsis
    }
}

impl Deref for Snapshot {
    type Target = Synopsis;

    fn deref(&self) -> &Synopsis {
        &self.synopsis
    }
}

/// A read-mostly store for the synopsis a query layer is currently serving,
/// supporting atomic replacement under live traffic.
///
/// * **Readers** call [`SynopsisStore::snapshot`] and get an epoch-stamped
///   `Arc<Synopsis>` clone. The read lock is held only for that clone —
///   reads are wait-free in practice, because no writer ever holds the write
///   lock across real work.
/// * **Writers** serialize on an internal mutex. [`SynopsisStore::publish`]
///   swaps in a fully built synopsis; [`SynopsisStore::update_merge`] is the
///   read-modify-publish cycle of a background refitter: merge an
///   adjacent-chunk synopsis into the current one
///   ([`Synopsis::merge`]), re-merged to `budget` pieces, and publish the
///   result — all merge work happening outside the read-side lock.
///
/// ```
/// use hist_core::{Estimator, EstimatorBuilder, GreedyMerging, Signal};
/// use hist_serve::SynopsisStore;
///
/// let estimator = GreedyMerging::new(EstimatorBuilder::new(4));
/// let fit = |lo: usize| {
///     let values: Vec<f64> = (lo..lo + 100).map(|i| ((i / 50) % 4) as f64 + 1.0).collect();
///     estimator.fit(&Signal::from_dense(values).unwrap()).unwrap()
/// };
///
/// let store = SynopsisStore::new();
/// assert!(store.snapshot().is_none());
///
/// // A writer publishes the first chunk, then merges the next one in.
/// let first = store.publish(fit(0));
/// let second = store.update_merge(&fit(100), 9).unwrap();
/// assert!(second > first);
///
/// // Readers hold an immutable snapshot; later publishes don't disturb it.
/// let snapshot = store.snapshot().unwrap();
/// assert_eq!(snapshot.epoch(), second);
/// assert_eq!(snapshot.domain(), 200);
/// let median = snapshot.quantile(0.5).unwrap();
/// assert!(median < 200);
/// ```
#[derive(Debug, Default)]
pub struct SynopsisStore {
    current: RwLock<Option<Snapshot>>,
    /// Last published epoch; holding this lock serializes the whole
    /// read-modify-publish cycle of a writer, so concurrent `update_merge`
    /// calls never lose each other's chunks.
    writer: Mutex<u64>,
    /// Maintenance accounting and (when a policy is attached) the retained
    /// chunk decomposition a background refit rebuilds from. Mutating paths
    /// hold the writer mutex first, then this — never the other order.
    maintenance: Mutex<MaintenanceState>,
}

impl SynopsisStore {
    /// An empty store: readers see `None` until the first publish.
    pub fn new() -> Self {
        Self::default()
    }

    /// A store already serving `synopsis` at epoch 1.
    pub fn with_initial(synopsis: Synopsis) -> Self {
        let store = Self::new();
        store.publish(synopsis);
        store
    }

    /// The snapshot currently served: an `Arc` clone plus its epoch, or
    /// `None` before the first publish. Never blocks on writer merge work.
    pub fn snapshot(&self) -> Option<Snapshot> {
        self.current.read().expect("store lock poisoned").clone()
    }

    /// The epoch of the currently served snapshot (0 before the first
    /// publish). Epochs increase strictly with every publish.
    pub fn epoch(&self) -> u64 {
        self.snapshot().map_or(0, |s| s.epoch())
    }

    /// Atomically replaces the served synopsis with a fully built one and
    /// returns the new epoch. Use this when a refitter rebuilt the synopsis
    /// from scratch (e.g. a better fit over the full signal).
    pub fn publish(&self, synopsis: Synopsis) -> u64 {
        self.install(synopsis.into_shared())
    }

    /// The read-modify-publish cycle of a background refitter: merges
    /// `chunk` — a synopsis fitted on the signal chunk *adjacent to the
    /// right* of the currently served domain — into the current synopsis
    /// with [`Synopsis::merge`] (re-merged down to `budget` pieces) and
    /// publishes the result. An empty store just publishes `chunk` as is.
    ///
    /// Returns the new epoch. Concurrent callers serialize; readers keep
    /// serving the previous snapshot until the merged one is installed.
    pub fn update_merge(&self, chunk: &Synopsis, budget: usize) -> Result<u64> {
        if budget == 0 {
            // Checked up front (not just inside `Synopsis::merge`) so the
            // empty-store path rejects it too, and callers like the keyed
            // map can rely on "invalid budget never mutates anything".
            return Err(Error::InvalidParameter {
                name: "budget",
                reason: "the merge budget must be at least 1".into(),
            });
        }
        let mut last_epoch = self.writer.lock().expect("writer lock poisoned");
        let (next, stats) = match self.snapshot() {
            Some(current) => {
                let (merged, stats) = current.merge_with_stats(chunk, budget)?;
                (merged, Some(stats))
            }
            None => (chunk.clone(), None),
        };
        *last_epoch += 1;
        let epoch = *last_epoch;
        {
            let mut maintenance = self.maintenance.lock().expect("maintenance lock poisoned");
            match stats {
                Some(stats) => {
                    maintenance.merges += 1;
                    maintenance.merges_since_refit += 1;
                    maintenance.merged_mass += stats.incoming_mass;
                    maintenance.accumulated_error += stats.l2_delta;
                    maintenance.total_error += stats.l2_delta;
                    if maintenance.policy.is_some() {
                        if maintenance.retained.is_empty() {
                            // The decomposition was dropped (fold failure):
                            // reseed from the merged whole.
                            maintenance.retained.push(next.clone());
                        } else {
                            maintenance.retain_chunk(chunk.clone());
                        }
                    }
                }
                // First publish: the chunk itself is the baseline.
                None => {
                    let seed = maintenance.policy.is_some().then(|| next.clone());
                    maintenance.rebaseline(seed);
                }
            }
        }
        *self.current.write().expect("store lock poisoned") =
            Some(Snapshot { epoch, synopsis: next.into_shared() });
        Ok(epoch)
    }

    /// Attaches (or with `None` detaches) a maintenance policy, validated.
    ///
    /// Attaching re-baselines the error-budget accounting on the currently
    /// served synopsis: the accumulator starts at zero and the retained
    /// decomposition starts from the served state, so refits rebuild exactly
    /// what later merges extend.
    pub fn set_maintenance(&self, policy: Option<MaintenancePolicy>) -> Result<()> {
        if let Some(policy) = &policy {
            policy.validate()?;
        }
        // Serialize with writers so the baseline matches the served synopsis.
        let _writer = self.writer.lock().expect("writer lock poisoned");
        let mut maintenance = self.maintenance.lock().expect("maintenance lock poisoned");
        maintenance.policy = policy;
        let seed = if maintenance.policy.is_some() {
            self.snapshot().map(|s| s.synopsis().as_ref().clone())
        } else {
            None
        };
        maintenance.rebaseline(seed);
        Ok(())
    }

    /// The attached maintenance policy, if any.
    pub fn maintenance_policy(&self) -> Option<MaintenancePolicy> {
        self.maintenance.lock().expect("maintenance lock poisoned").policy.clone()
    }

    /// The store's maintenance accounting: merge counters, the error-budget
    /// accumulator, refit history and the retained-chunk count. Counters
    /// accumulate whether or not a policy is attached (the accounting is a
    /// byproduct of the merge the store performs anyway).
    pub fn maintenance_stats(&self) -> MaintenanceStats {
        self.maintenance.lock().expect("maintenance lock poisoned").stats()
    }

    /// Claims the store's single refit slot if maintenance is due: a policy
    /// is attached, the policy's trigger fires for the current accumulator,
    /// at least two retained synopses exist to rebuild from, and no other
    /// refit is queued or running. Returns whether the caller now owns the
    /// slot (and must follow up with [`SynopsisStore::run_refit`], typically
    /// via a [`crate::MaintenanceWorker`]).
    pub fn try_begin_refit(&self) -> bool {
        let mut maintenance = self.maintenance.lock().expect("maintenance lock poisoned");
        let Some(policy) = &maintenance.policy else {
            return false;
        };
        let elapsed = maintenance.last_refit_at.map(|at| at.elapsed());
        if maintenance.inflight
            || maintenance.retained.len() < 2
            || !policy.due_with_elapsed(
                maintenance.merges_since_refit,
                maintenance.accumulated_error,
                elapsed,
            )
        {
            return false;
        }
        maintenance.inflight = true;
        true
    }

    /// Rebuilds the served synopsis from the retained chunk decomposition —
    /// a balanced `tree_merge` down to the policy's compaction budget, which
    /// does not carry the accumulated error of the left-deep merge chain the
    /// steady-state updates built — and publishes it through the normal
    /// epoch-stamped path. Readers are never blocked (they only touch the
    /// snapshot pointer); concurrent writers briefly queue on the writer
    /// mutex exactly as they do behind each other, so no epoch is lost.
    ///
    /// Returns the refit's epoch, or `Ok(None)` when there is nothing to do
    /// (no policy attached, or fewer than two retained synopses). Always
    /// releases the in-flight slot.
    pub fn run_refit(&self) -> Result<Option<u64>> {
        let mut last_epoch = self.writer.lock().expect("writer lock poisoned");
        let mut maintenance = self.maintenance.lock().expect("maintenance lock poisoned");
        let Some(policy) = maintenance.policy.clone() else {
            maintenance.inflight = false;
            return Ok(None);
        };
        if maintenance.retained.len() < 2 {
            maintenance.inflight = false;
            return Ok(None);
        }
        let compacted = match tree_merge(maintenance.retained.clone(), policy.compaction_budget()) {
            Ok(compacted) => compacted,
            Err(e) => {
                maintenance.inflight = false;
                return Err(e);
            }
        };
        *last_epoch += 1;
        let epoch = *last_epoch;
        maintenance.refits += 1;
        maintenance.last_refit_epoch = epoch;
        maintenance.rebaseline(Some(compacted.clone()));
        maintenance.inflight = false;
        drop(maintenance);
        *self.current.write().expect("store lock poisoned") =
            Some(Snapshot { epoch, synopsis: compacted.into_shared() });
        Ok(Some(epoch))
    }

    /// Persists the store to `path` as an `AHISTSTO` container (atomic
    /// write-then-rename; see `hist-persist`): the last published epoch plus
    /// the currently served synopsis, if any.
    ///
    /// The saved epoch and synopsis always belong together even under
    /// concurrent publishes: the writer mutex is held just long enough to
    /// capture the `(epoch, Arc<Synopsis>)` pair, and the encode plus disk
    /// I/O happen after it is released, so writers stall for a pointer copy
    /// — not for the filesystem. Readers are never blocked at all. Each save
    /// writes its own uniquely named temp sibling before renaming, so
    /// concurrent saves to the same path each land whole.
    pub fn save(&self, path: impl AsRef<Path>) -> PersistResult<()> {
        let (epoch, snapshot) = self.persisted_state();
        save_store_snapshot(path, epoch, snapshot.as_ref().map(|s| s.synopsis().as_ref()))
    }

    /// Captures the `(last published epoch, served snapshot)` pair that
    /// [`SynopsisStore::save`] would persist, consistent even under
    /// concurrent publishes: the writer mutex is held just long enough for
    /// the capture (install/update_merge write both fields under that lock),
    /// so callers can encode or ship the pair without stalling writers.
    pub fn persisted_state(&self) -> (u64, Option<Snapshot>) {
        let last_epoch = self.writer.lock().expect("writer lock poisoned");
        (*last_epoch, self.snapshot())
    }

    /// Reopens a store previously [`SynopsisStore::save`]d: the returned
    /// store serves the persisted synopsis at the persisted epoch, and every
    /// later publish continues the epoch sequence — epochs are monotone
    /// *across* restarts, so readers comparing epochs never mistake a
    /// pre-restart snapshot for a newer one.
    ///
    /// A saved-empty store reopens empty (readers see `None`) but still
    /// resumes its epoch counter. Persisted epochs in the upper half of the
    /// `u64` range are rejected as forged: no real store ever publishes
    /// 2⁶³ times, and accepting one would let the counter overflow (and
    /// epochs jump backwards) after enough later publishes.
    pub fn open(path: impl AsRef<Path>) -> PersistResult<Self> {
        let persisted = load_store_snapshot(path)?;
        Self::resume(persisted.epoch, persisted.synopsis)
    }

    /// Rebuilds a store from persisted parts: serving `synopsis` (if any) at
    /// `epoch`, with later publishes continuing the epoch sequence. This is
    /// the validation funnel shared by [`SynopsisStore::open`] and the keyed
    /// [`StoreMap`](crate::StoreMap): epochs in the upper half of the `u64`
    /// range are rejected as forged — no real store publishes 2⁶³ times, and
    /// accepting one would let the counter overflow (and epochs jump
    /// backwards) after enough later publishes.
    pub fn resume(epoch: u64, synopsis: Option<Synopsis>) -> PersistResult<Self> {
        if epoch > u64::MAX / 2 {
            return Err(hist_persist::CodecError::Invalid(hist_core::Error::InvalidParameter {
                name: "epoch",
                reason: format!("persisted epoch {epoch} is beyond any reachable publish count"),
            })
            .into());
        }
        let store = Self::new();
        *store.writer.lock().expect("writer lock poisoned") = epoch;
        if let Some(synopsis) = synopsis {
            *store.current.write().expect("store lock poisoned") =
                Some(Snapshot { epoch, synopsis: synopsis.into_shared() });
        }
        Ok(store)
    }

    fn install(&self, synopsis: Arc<Synopsis>) -> u64 {
        let mut last_epoch = self.writer.lock().expect("writer lock poisoned");
        *last_epoch += 1;
        let epoch = *last_epoch;
        {
            // A direct publish replaces the served synopsis wholesale: the
            // error-budget accounting re-baselines on it, like a refit would.
            let mut maintenance = self.maintenance.lock().expect("maintenance lock poisoned");
            let seed = maintenance.policy.is_some().then(|| synopsis.as_ref().clone());
            maintenance.rebaseline(seed);
        }
        *self.current.write().expect("store lock poisoned") = Some(Snapshot { epoch, synopsis });
        epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hist_core::{Estimator, EstimatorBuilder, GreedyMerging, Signal};

    fn fit_values(values: Vec<f64>) -> Synopsis {
        GreedyMerging::new(EstimatorBuilder::new(3))
            .fit(&Signal::from_dense(values).unwrap())
            .unwrap()
    }

    fn step_chunk(level: f64) -> Synopsis {
        fit_values((0..64).map(|i| level + ((i / 32) % 2) as f64).collect())
    }

    #[test]
    fn empty_store_serves_nothing() {
        let store = SynopsisStore::new();
        assert!(store.snapshot().is_none());
        assert_eq!(store.epoch(), 0);
    }

    #[test]
    fn publish_bumps_the_epoch_and_swaps_the_synopsis() {
        let store = SynopsisStore::with_initial(step_chunk(1.0));
        assert_eq!(store.epoch(), 1);
        let before = store.snapshot().unwrap();
        let epoch = store.publish(step_chunk(5.0));
        assert_eq!(epoch, 2);
        // The old snapshot is unchanged; the store serves the new one.
        assert_eq!(before.epoch(), 1);
        let after = store.snapshot().unwrap();
        assert_eq!(after.epoch(), 2);
        assert!(after.total_mass() > before.total_mass());
    }

    #[test]
    fn update_merge_extends_the_served_domain() {
        let store = SynopsisStore::new();
        let first = store.update_merge(&step_chunk(1.0), 7).unwrap();
        assert_eq!(first, 1);
        assert_eq!(store.snapshot().unwrap().domain(), 64);
        let second = store.update_merge(&step_chunk(2.0), 7).unwrap();
        assert_eq!(second, 2);
        let snapshot = store.snapshot().unwrap();
        assert_eq!(snapshot.domain(), 128);
        assert!(snapshot.num_pieces() <= 7);
        assert!(store.update_merge(&step_chunk(2.0), 0).is_err(), "zero budgets are rejected");
        assert_eq!(store.epoch(), 2, "a failed merge must not bump the epoch");
    }

    #[test]
    fn save_and_open_preserve_epoch_and_synopsis() {
        let dir = std::env::temp_dir().join("hist-serve-tests").join("save-open");
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let path = dir.join("store.snapshot");

        let store = SynopsisStore::with_initial(step_chunk(1.0));
        store.update_merge(&step_chunk(2.0), 7).unwrap();
        store.update_merge(&step_chunk(3.0), 7).unwrap();
        let saved_epoch = store.epoch();
        let saved_mass = store.snapshot().unwrap().total_mass();
        store.save(&path).unwrap();

        // Reopen: same epoch, same synopsis, and the epoch sequence resumes
        // monotonically rather than restarting at 1.
        let reopened = SynopsisStore::open(&path).unwrap();
        let snapshot = reopened.snapshot().expect("persisted synopsis");
        assert_eq!(snapshot.epoch(), saved_epoch);
        assert_eq!(reopened.epoch(), saved_epoch);
        assert_eq!(snapshot.total_mass(), saved_mass);
        assert_eq!(snapshot.domain(), 3 * 64);
        let next = reopened.update_merge(&step_chunk(4.0), 7).unwrap();
        assert_eq!(next, saved_epoch + 1, "epochs must continue across restarts");
    }

    #[test]
    fn empty_stores_round_trip_their_epoch_counter() {
        let dir = std::env::temp_dir().join("hist-serve-tests").join("empty");
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let path = dir.join("store.snapshot");

        // Never-published store: epoch 0, no synopsis.
        SynopsisStore::new().save(&path).unwrap();
        let reopened = SynopsisStore::open(&path).unwrap();
        assert!(reopened.snapshot().is_none());
        assert_eq!(reopened.epoch(), 0);
        assert_eq!(reopened.publish(step_chunk(1.0)), 1);

        // Opening garbage or a missing file is a typed error, not a panic.
        assert!(SynopsisStore::open(dir.join("missing.snapshot")).is_err());
        std::fs::write(&path, b"AHISTSTO but corrupted").unwrap();
        assert!(SynopsisStore::open(&path).is_err());
    }

    #[test]
    fn forged_epochs_near_the_counter_limit_are_rejected() {
        // A hand-forged snapshot with an absurd epoch must not open: the next
        // publish would overflow the counter and epochs would go backwards.
        let dir = std::env::temp_dir().join("hist-serve-tests").join("forged-epoch");
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let path = dir.join("forged.snapshot");
        let bytes = hist_persist::encode_store_snapshot(u64::MAX, Some(&step_chunk(1.0)));
        std::fs::write(&path, bytes).unwrap();
        assert!(SynopsisStore::open(&path).is_err());

        // The largest accepted epoch still opens and publishes fine.
        let bytes = hist_persist::encode_store_snapshot(u64::MAX / 2, Some(&step_chunk(1.0)));
        std::fs::write(&path, bytes).unwrap();
        let store = SynopsisStore::open(&path).unwrap();
        assert_eq!(store.publish(step_chunk(2.0)), u64::MAX / 2 + 1);
    }

    #[test]
    fn snapshots_are_immutable_under_later_merges() {
        let store = SynopsisStore::with_initial(step_chunk(1.0));
        let snapshot = store.snapshot().unwrap();
        let mass_before = snapshot.total_mass();
        for _ in 0..5 {
            store.update_merge(&step_chunk(3.0), 7).unwrap();
        }
        assert_eq!(snapshot.total_mass(), mass_before);
        assert_eq!(snapshot.domain(), 64);
        assert_eq!(store.snapshot().unwrap().domain(), 6 * 64);
    }
}
